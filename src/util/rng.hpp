// Deterministic, splittable pseudo-random number generation.
//
// Every randomized component of the library takes an explicit 64-bit seed so
// that experiments are reproducible and Monte-Carlo sweeps can split seeds
// deterministically across threads (results never depend on scheduling).
//
// Engines:
//   * SplitMix64 — tiny stateless-ish mixer, used to derive child seeds.
//   * Xoshiro256StarStar — the workhorse engine (Blackman/Vigna 2018),
//     UniformRandomBitGenerator-compatible so it plugs into <random>.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace p2pvod::util {

/// SplitMix64 mixing step: maps any 64-bit value to a well-mixed 64-bit value.
/// This is the canonical finalizer from Vigna's splitmix64; it is bijective.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Sequential SplitMix64 generator; primarily used to seed other engines and
/// to derive independent child seeds for parallel trials.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// Derive the `index`-th child seed of `parent`. Children of distinct indices
/// (or distinct parents) are statistically independent for our purposes.
[[nodiscard]] constexpr std::uint64_t child_seed(std::uint64_t parent,
                                                 std::uint64_t index) noexcept {
  return splitmix64_mix(parent ^ splitmix64_mix(index + 0x632be59bd9b4e019ULL));
}

/// xoshiro256** 1.0 — fast, high-quality 256-bit state engine.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Equivalent to 2^128 calls; yields non-overlapping subsequences.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Library-standard RNG facade: one engine plus the distribution helpers the
/// simulator and allocators actually need. Keeping them here (instead of
/// ad-hoc <random> distributions) guarantees identical streams across
/// platforms — libstdc++/libc++ distributions are not bit-compatible.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  result_type operator()() noexcept { return engine_(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound) using Lemire's nearly-divisionless method.
  /// bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_between(std::int64_t lo,
                                          std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Standard exponential variate with the given rate (> 0).
  [[nodiscard]] double next_exponential(double rate) noexcept;

  /// Fisher-Yates shuffle of an index vector [0, count).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t count);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    if (values.empty()) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// Derive a child Rng deterministically; independent of this engine's state.
  [[nodiscard]] Rng child(std::uint64_t index) const noexcept {
    return Rng(child_seed(seed_, index));
  }

 private:
  Xoshiro256StarStar engine_;
  std::uint64_t seed_;
};

}  // namespace p2pvod::util
