#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace p2pvod::util::json {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::runtime_error(std::string("json::Value: not a ") + wanted);
}

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

std::string format_number(double value) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; null is the least-bad encoding and the parser of
    // record (this file) reads it back as such.
    return "null";
  }
  // Exact integers print without a fraction so counts stay readable.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    return buffer;
  }
  std::ostringstream out;
  out.precision(17);  // max_digits10: round-trips every double
  out << value;
  return out.str();
}

void dump_value(const Value& value, int indent, int depth, std::string& out) {
  // indent < 0 means compact output; otherwise both operands are non-negative
  // (depth counts nesting), so the size_t casts below cannot change values.
  const std::size_t unit =
      indent < 0 ? 0 : static_cast<std::size_t>(indent);
  const std::size_t level = depth < 0 ? 0 : static_cast<std::size_t>(depth);
  const std::string pad =
      indent < 0 ? std::string() : std::string(unit * (level + 1), ' ');
  const std::string close_pad =
      indent < 0 ? std::string() : std::string(unit * level, ' ');
  const char* newline = indent < 0 ? "" : "\n";
  const char* colon = indent < 0 ? ":" : ": ";
  switch (value.kind()) {
    case Value::Kind::kNull: out += "null"; return;
    case Value::Kind::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Value::Kind::kNumber: out += format_number(value.as_number()); return;
    case Value::Kind::kString: append_escaped(out, value.as_string()); return;
    case Value::Kind::kArray: {
      const auto& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < array.size(); ++i) {
        out += pad;
        dump_value(array[i], indent, depth + 1, out);
        if (i + 1 < array.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      const auto& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += newline;
      for (std::size_t i = 0; i < object.size(); ++i) {
        out += pad;
        append_escaped(out, object[i].first);
        out += colon;
        dump_value(object[i].second, indent, depth + 1, out);
        if (i + 1 < object.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json::parse: " + message + " at byte " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t length = 0;
    while (literal[length] != '\0') ++length;
    if (text_.compare(pos_, length, literal) != 0) return false;
    pos_ += length;
    return true;
  }

  Value parse_value() {
    const char ch = peek();
    switch (ch) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ > before;
    };
    if (!digits()) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("invalid number exponent");
    }
    try {
      return Value(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      // stod throws std::out_of_range (a logic_error) on e.g. 1e999; keep
      // the documented std::runtime_error contract.
      fail("number out of range");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') code |= unsigned(hex - '0');
            else if (hex >= 'a' && hex <= 'f') code |= unsigned(hex - 'a' + 10);
            else if (hex >= 'A' && hex <= 'F') code |= unsigned(hex - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are not produced by
          // this library's own writer).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array out;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      out.push_back(parse_value());
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == ']') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object out;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      out.emplace_back(std::move(key), parse_value());
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == '}') {
        ++pos_;
        return Value(std::move(out));
      }
      fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return array_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return object_;
}

const Value* Value::find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  if (const Value* value = find(key); value != nullptr) return *value;
  throw std::runtime_error("json::Value: missing key '" + key + "'");
}

void Value::set(std::string key, Value value) {
  if (kind_ != Kind::kObject) kind_error("object");
  object_.emplace_back(std::move(key), std::move(value));
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("json::parse_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

void write_file(const std::string& path, const Value& value, int indent) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("json::write_file: cannot open " + path);
  file << value.dump(indent) << '\n';
  if (!file) throw std::runtime_error("json::write_file: write failed " + path);
}

}  // namespace p2pvod::util::json
