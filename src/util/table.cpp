#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace p2pvod::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  return *this;
}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string_view text) {
  if (rows_.empty()) begin_row();
  rows_.back().emplace_back(text);
  return *this;
}

std::string Table::format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream out;
  // General format keeps small/large magnitudes readable in one column.
  out.precision(precision);
  out << value;
  return out.str();
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint32_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(bool value) { return cell(value ? "yes" : "no"); }

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::size_t Table::columns() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  return cols;
}

void Table::print(std::ostream& out) const {
  const std::size_t cols = columns();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell_text = i < row.size() ? row[i] : std::string{};
      out << cell_text;
      if (i + 1 < cols)
        out << std::string(width[i] - cell_text.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < cols; ++i) rule += width[i] + (i + 1 < cols ? 2 : 0);
    out << std::string(rule, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell_text) {
  const bool needs_quote =
      cell_text.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell_text;
  std::string out = "\"";
  for (const char ch : cell_text) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::write_csv: cannot open " + path);
  file << to_csv();
  if (!file) throw std::runtime_error("Table::write_csv: write failed " + path);
}

}  // namespace p2pvod::util
