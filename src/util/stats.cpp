#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2pvod::util {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  // Neumaier summation: the compensation catches the low-order bits whether
  // the running total or the addend is the larger magnitude.
  const double t = sum_ + x;
  comp_ += std::abs(sum_) >= std::abs(x) ? (sum_ - t) + x : (x - t) + sum_;
  sum_ = t;
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double x = other.sum_ + other.comp_;
  const double t = sum_ + x;
  comp_ += std::abs(sum_) >= std::abs(x) ? (sum_ - t) + x : (x - t) + sum_;
  sum_ = t;
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double OnlineStats::ci95_halfwidth() const noexcept {
  return 1.96 * stderr_mean();
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

QuantileSummary summarize_quantiles(std::vector<double> values) {
  QuantileSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  s.p50 = at(0.50);
  s.p90 = at(0.90);
  s.p99 = at(0.99);
  s.max = values.back();
  return s;
}

Proportion wilson_interval(std::size_t successes, std::size_t trials,
                           double z) {
  Proportion p;
  if (trials == 0) return p;
  const auto n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  p.estimate = phat;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  p.lower = std::max(0.0, (center - margin) / denom);
  p.upper = std::min(1.0, (center + margin) / denom);
  return p;
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  buckets_[value] += weight;
  total_ += weight;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [v, c] : buckets_)
    acc += static_cast<double>(v) * static_cast<double>(c);
  return acc / static_cast<double>(total_);
}

std::int64_t Histogram::min() const {
  if (buckets_.empty()) throw std::logic_error("Histogram::min: empty");
  return buckets_.begin()->first;
}

std::int64_t Histogram::max() const {
  if (buckets_.empty()) throw std::logic_error("Histogram::max: empty");
  return buckets_.rbegin()->first;
}

std::int64_t Histogram::percentile(double q) const {
  if (buckets_.empty())
    throw std::logic_error("Histogram::percentile: empty");
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (const auto& [v, c] : buckets_) {
    seen += c;
    if (seen >= target) return v;
  }
  return buckets_.rbegin()->first;
}

std::string Histogram::to_string(std::size_t max_buckets) const {
  std::ostringstream out;
  std::size_t emitted = 0;
  for (const auto& [v, c] : buckets_) {
    if (emitted++ >= max_buckets) {
      out << " ...";
      break;
    }
    if (emitted > 1) out << ' ';
    out << v << ':' << c;
  }
  return out.str();
}

}  // namespace p2pvod::util
