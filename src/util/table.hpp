// Aligned text tables and CSV emission for the experiment harness.
//
// Every bench binary prints its series as (a) a human-readable aligned table
// on stdout and (b) optionally a CSV file, so results can be diffed against
// EXPERIMENTS.md and re-plotted.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace p2pvod::util {

/// Column-aligned table builder. Cells are strings; numeric helpers format
/// with sensible defaults (6 significant digits, trailing-zero trimmed).
class Table {
 public:
  explicit Table(std::string title = {});

  Table& set_header(std::vector<std::string> header);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& begin_row();
  Table& cell(std::string_view text);
  /// Without this overload a string literal would bind to cell(bool) —
  /// const char* -> bool is a standard conversion and beats string_view.
  Table& cell(const char* text) { return cell(std::string_view(text)); }
  Table& cell(double value, int precision = 4);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(std::uint32_t value);
  Table& cell(int value);
  Table& cell(bool value);

  /// Convenience: whole row at once.
  Table& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const;

  /// Render as an aligned text table.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (header + rows, RFC-ish quoting).
  [[nodiscard]] std::string to_csv() const;
  /// Write CSV to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  /// Format a double the way cell(double) does (shared by tests).
  [[nodiscard]] static std::string format_double(double value, int precision = 4);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p2pvod::util
