// Tiny command-line/environment option parser for examples and benches.
//
// Usage:  ArgParser args(argc, argv);
//         int n = args.get_int("n", 500);          // --n=1000 or --n 1000
//         double u = args.get_double("u", 1.25);
// Every option also falls back to environment variable P2PVOD_<UPPERNAME> so
// bench binaries can be scaled without editing the command line
// (e.g. P2PVOD_SCALE=3 ./bench_fig_threshold).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace p2pvod::util {

class ArgParser {
 public:
  /// `bare_flags` names options that never take a value (e.g. "--all",
  /// "--no-json"): a token following one is left as a positional instead of
  /// being consumed as the flag's value. Without the list, "--flag value"
  /// always binds value to flag.
  ArgParser(int argc, const char* const* argv,
            std::vector<std::string> bare_flags = {});

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name,
                                       std::uint64_t fallback) const;

  /// Positional arguments (non --flag tokens) in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Names of the options present on the command line (sorted; excludes
  /// environment fallbacks). Lets a driver reject misspelled flags instead
  /// of silently ignoring them.
  [[nodiscard]] std::vector<std::string> option_names() const;

  /// Name of the executable (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] static std::string env_name(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Global convenience: bench scale factor from P2PVOD_SCALE (default 1.0).
/// Benches multiply trial counts / n by this so CI machines can shrink work.
[[nodiscard]] double bench_scale();

/// `base` scaled by bench_scale(), rounded to nearest, floored at
/// `min_value`. The floor keeps statistics meaningful at tiny scales (e.g. a
/// trial count never drops below 2 when the caller needs a fraction), so a
/// small-enough P2PVOD_SCALE pins every scaled quantity at its floor rather
/// than at zero.
[[nodiscard]] std::uint32_t scaled_count(std::uint32_t base,
                                         std::uint32_t min_value = 1);

/// Positive integer read from environment variable `name`: nullopt when the
/// variable is unset, unparsable, or <= 0. Shared by the runtime knobs
/// (P2PVOD_THREADS, P2PVOD_GRAIN, P2PVOD_PROBE_WIDTH) so their parsing
/// cannot drift apart. Re-reads the environment on every call — tests
/// toggle these at runtime.
[[nodiscard]] std::optional<long> env_positive_long(const char* name);

}  // namespace p2pvod::util
