// Tiny command-line/environment option parser for examples and benches.
//
// Usage:  ArgParser args(argc, argv);
//         int n = args.get_int("n", 500);          // --n=1000 or --n 1000
//         double u = args.get_double("u", 1.25);
// Every option also falls back to environment variable P2PVOD_<UPPERNAME> so
// bench binaries can be scaled without editing the command line
// (e.g. P2PVOD_SCALE=3 ./bench_fig_threshold).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace p2pvod::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name,
                                       std::uint64_t fallback) const;

  /// Positional arguments (non --flag tokens) in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Name of the executable (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] static std::string env_name(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Global convenience: bench scale factor from P2PVOD_SCALE (default 1.0).
/// Benches multiply trial counts / n by this so CI machines can shrink work.
[[nodiscard]] double bench_scale();

}  // namespace p2pvod::util
