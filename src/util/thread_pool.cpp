#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace p2pvod::util {

namespace {

// Process-wide mirrors of the per-pool counters, so pool activity shows up
// in the BENCH metrics block without threading pool handles around. Tagged
// kScheduling: steal/help counts depend on thread count and timing by
// nature. Handles resolve once (leaked registry keeps them valid through
// static destruction, which matters here — global() pool workers run late).
obs::Counter& obs_submitted() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "pool/submitted", obs::Stability::kScheduling);
  return counter;
}
obs::Counter& obs_executed_local() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "pool/executed_local", obs::Stability::kScheduling);
  return counter;
}
obs::Counter& obs_executed_stolen() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "pool/executed_stolen", obs::Stability::kScheduling);
  return counter;
}
obs::Counter& obs_helping_runs() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "pool/helping_runs", obs::Stability::kScheduling);
  return counter;
}

// Which pool (if any) owns the current thread, and the worker's own queue
// index within it; set once per worker thread.
thread_local ThreadPool* t_current_pool = nullptr;
thread_local std::size_t t_worker_index = 0;
// Depth of parallel_for chunk-claiming loops on this thread. Non-worker
// callers execute chunks themselves; while they do, they are "inside" the
// parallel region exactly like a pool worker is, and nested parallel
// helpers must degrade to serial the same way.
thread_local int t_parallel_for_depth = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true);
  {
    // Empty critical section: pairs with the recheck workers do under
    // idle_mutex_ before sleeping, so none can miss the shutdown.
    const std::lock_guard lock(idle_mutex_);
  }
  idle_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  return submit(std::move(task), TaskPriority::kNormal);
}

std::future<void> ThreadPool::submit(std::function<void()> task,
                                     TaskPriority priority) {
  Task packaged(std::move(task));
  auto future = packaged.get_future();
  // Workers push to their own deque (LIFO locality for nested submission);
  // external threads spread round-robin so no single deque becomes the old
  // global bottleneck.
  const std::size_t target =
      on_worker_thread()
          ? t_worker_index
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  stat_submitted_.fetch_add(1, std::memory_order_relaxed);
  obs_submitted().add();
  push(target, std::move(packaged), priority);
  return future;
}

void ThreadPool::push(std::size_t target, Task task, TaskPriority priority) {
  // Bump pending_ BEFORE the task becomes stealable: if a thief popped (and
  // decremented) between publish and a later increment, the unsigned counter
  // would wrap to SIZE_MAX and every idle worker would busy-spin on the
  // "pending but contended" path. Overcounting this way is safe — a worker
  // that sees pending_ > 0 with nothing queued yet just yields and retries.
  pending_.fetch_add(1);
  {
    const std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks[static_cast<std::size_t>(priority)].push_back(
        std::move(task));
  }
  // Wake a sleeper only when one might exist: submitters on a busy pool skip
  // the shared idle_mutex_ entirely, keeping the submit fast path on the
  // per-worker mutexes alone. Workers advertise themselves in sleepers_
  // under idle_mutex_ before rechecking pending_, and both counters are
  // seq_cst, so either this push sees the sleeper (and notifies through the
  // empty critical section, which cannot be lost) or the sleeper's recheck
  // sees this push's pending_ increment and never blocks.
  if (sleepers_.load() > 0) {
    {
      const std::lock_guard lock(idle_mutex_);
    }
    idle_cv_.notify_one();
  }
}

bool ThreadPool::pop_local(std::size_t self, Task& out) {
  WorkerQueue& queue = *queues_[self];
  const std::lock_guard lock(queue.mutex);
  for (auto& level : queue.tasks) {
    if (!level.empty()) {
      out = std::move(level.back());
      level.pop_back();
      pending_.fetch_sub(1);
      stat_executed_local_.fetch_add(1, std::memory_order_relaxed);
      obs_executed_local().add();
      return true;
    }
  }
  return false;
}

bool ThreadPool::steal(std::size_t self, Task& out) {
  const std::size_t count = queues_.size();
  // Priority is the outer loop: every victim's kHigh deque is tried before
  // any victim's kNormal one, so a stealing worker cannot invert priorities
  // across queues (the documented contract, same as the local pop).
  for (std::size_t level = 0; level < kTaskPriorityCount; ++level) {
    for (std::size_t offset = 1; offset <= count; ++offset) {
      const std::size_t victim = (self + offset) % count;
      if (victim == self) continue;
      WorkerQueue& queue = *queues_[victim];
      const std::unique_lock lock(queue.mutex, std::try_to_lock);
      if (!lock.owns_lock()) continue;  // contended victim: move on
      auto& tasks = queue.tasks[level];
      if (!tasks.empty()) {
        out = std::move(tasks.front());
        tasks.pop_front();
        pending_.fetch_sub(1);
        stat_executed_stolen_.fetch_add(1, std::memory_order_relaxed);
        obs_executed_stolen().add();
        return true;
      }
    }
  }
  return false;
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

ThreadPool* ThreadPool::current() noexcept { return t_current_pool; }

bool ThreadPool::inside_parallel_for() noexcept {
  return t_parallel_for_depth > 0;
}

bool ThreadPool::try_run_one() {
  Task task;
  const bool mine = on_worker_thread();
  // Non-workers pass size() so the steal sweep visits every deque.
  const std::size_t self = mine ? t_worker_index : queues_.size();
  const bool got = (mine && pop_local(self, task)) || steal(self, task);
  if (!got) return false;
  stat_helping_runs_.fetch_add(1, std::memory_order_relaxed);
  obs_helping_runs().add();
  if (mine) queues_[self]->executed.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::wait(std::future<void>& future) {
  using namespace std::chrono_literals;
  // Exponential backoff on idle: stay responsive while work is flowing, but
  // escalate toward plain blocking when the awaited task runs long and the
  // queues are empty — otherwise a waiter burns thousands of timed wakeups
  // per second doing nothing. Running a task resets the backoff (fresh work
  // may have arrived while we were busy).
  auto backoff = 200us;
  constexpr auto kMaxBackoff = 10ms;
  while (future.wait_for(0s) != std::future_status::ready) {
    if (try_run_one()) {
      backoff = 200us;
    } else {
      future.wait_for(backoff);
      backoff = std::min<std::chrono::microseconds>(backoff * 2, kMaxBackoff);
    }
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats out;
  out.submitted = stat_submitted_.load(std::memory_order_relaxed);
  out.executed_local = stat_executed_local_.load(std::memory_order_relaxed);
  out.executed_stolen = stat_executed_stolen_.load(std::memory_order_relaxed);
  out.helping_runs = stat_helping_runs_.load(std::memory_order_relaxed);
  out.per_worker_executed.reserve(queues_.size());
  for (const auto& queue : queues_)
    out.per_worker_executed.push_back(
        queue->executed.load(std::memory_order_relaxed));
  return out;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    // Cap far above any sane machine: a garbage value (or strtol
    // saturation) must not make the constructor spawn billions of threads.
    if (const auto threads = env_positive_long("P2PVOD_THREADS")) {
      return static_cast<std::size_t>(std::min(*threads, 512L));
    }
    return std::size_t{0};  // hardware_concurrency
  }());
  return pool;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_current_pool = this;
  t_worker_index = self;
  Task task;
  for (;;) {
    if (pop_local(self, task) || steal(self, task)) {
      queues_[self]->executed.fetch_add(1, std::memory_order_relaxed);
      task();
      task = Task{};
      continue;
    }
    if (pending_.load() > 0) {
      // A task exists but its deque was try_lock-contended (or is mid-push);
      // retry instead of sleeping past it.
      std::this_thread::yield();
      continue;
    }
    {
      std::unique_lock lock(idle_mutex_);
      sleepers_.fetch_add(1);
      idle_cv_.wait(lock, [this] {
        return stopping_.load() || pending_.load() > 0;
      });
      sleepers_.fetch_sub(1);
    }
    // Drain everything queued before shutdown (same contract as the old
    // single-queue pool: submitted futures always complete).
    if (stopping_.load() && pending_.load() == 0) {
      return;
    }
  }
}

namespace {

/// Chunk length for parallel_for when the caller passed 0: the P2PVOD_GRAIN
/// environment override, else count / (4 * workers) rounded up (4 chunks per
/// worker absorbs moderate cost imbalance without drowning in task
/// bookkeeping). Re-read per call: tests toggle the variable at runtime.
std::size_t default_grain(std::size_t count, std::size_t workers) {
  if (const auto grain = env_positive_long("P2PVOD_GRAIN")) {
    return static_cast<std::size_t>(*grain);
  }
  const std::size_t chunks = workers * 4;
  return (count + chunks - 1) / chunks;
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool, std::size_t grain, TaskPriority priority) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t count = end - begin;
  // Serial fallbacks: tiny ranges, serial pools, and nested parallelism —
  // whether the caller is a pool worker or a non-worker thread currently
  // executing another parallel_for's chunks (both are "inside" a parallel
  // region; going parallel again would only add scheduling overhead and
  // make sibling chunks' nested structure nondeterministic).
  if (pool->size() <= 1 || count <= 1 || pool->on_worker_thread() ||
      ThreadPool::inside_parallel_for()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (grain == 0) grain = default_grain(count, pool->size());
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Static chunking, dynamic claiming: chunk BOUNDARIES depend only on
  // (range, grain) — so the seed->index mapping of deterministic bodies is
  // scheduling-independent — while chunk->thread assignment comes from a
  // shared claim counter, which load-balances like stealing at chunk
  // granularity. The caller claims chunks alongside `runners` worker tasks
  // instead of executing arbitrary foreign pool tasks while blocked: helping
  // restricted to this loop's own chunks cannot nest unrelated work (stack
  // depth stays the program's logical nesting) and cannot invert priorities.
  //
  // Heap-shared state: a runner scheduled after the loop already finished
  // must find valid memory (it claims nothing and returns). Every chunk runs
  // under its own catch — all chunks execute before the first error
  // rethrows, so `body`'s captures stay alive until no chunk references
  // them, and nothing of the loop runs after parallel_for returns.
  struct State {
    std::function<void(std::size_t)> body;
    std::size_t begin = 0, end = 0, grain = 0, chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::promise<void> done;
  };
  auto state = std::make_shared<State>();
  state->body = body;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->chunks = chunks;

  const auto run_claimed_chunks = [](State& s) {
    // Mark the executing thread as inside the parallel region for the whole
    // claiming loop — this covers the originating caller AND any non-worker
    // thread that picks up a runner task through wait()/try_run_one(), so
    // nested parallel helpers degrade to serial on every thread that runs
    // chunks. (Chunk errors are captured below, never thrown, but RAII
    // keeps the depth balanced regardless.)
    struct DepthGuard {
      DepthGuard() { ++t_parallel_for_depth; }
      ~DepthGuard() { --t_parallel_for_depth; }
    } guard;
    for (;;) {
      const std::size_t chunk = s.next.fetch_add(1);
      if (chunk >= s.chunks) return;
      const std::size_t lo = s.begin + chunk * s.grain;
      const std::size_t hi = std::min(s.end, lo + s.grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) s.body(i);
      } catch (...) {
        const std::lock_guard lock(s.error_mutex);
        if (!s.first_error) s.first_error = std::current_exception();
      }
      if (s.completed.fetch_add(1) + 1 == s.chunks) s.done.set_value();
    }
  };

  const std::size_t runners = std::min(chunks, pool->size());
  for (std::size_t runner = 0; runner < runners; ++runner) {
    // Completion is tracked through state->done, not these futures: a
    // runner queued behind long foreign work must not delay the return
    // once every chunk has finished elsewhere.
    (void)pool->submit([state, run_claimed_chunks] {
      run_claimed_chunks(*state);
    }, priority);
  }
  run_claimed_chunks(*state);
  state->done.get_future().wait();
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace p2pvod::util
