#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace p2pvod::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("P2PVOD_THREADS"); env != nullptr) {
      const long parsed = std::strtol(env, nullptr, 10);
      // Cap far above any sane machine: a garbage value (or strtol
      // saturation) must not make the constructor spawn billions of threads.
      if (parsed > 0) {
        return static_cast<std::size_t>(std::min(parsed, 512L));
      }
    }
    return std::size_t{0};  // hardware_concurrency
  }());
  return pool;
}

namespace {
// Which pool (if any) owns the current thread; set once per worker thread.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t count = end - begin;
  if (pool->size() <= 1 || count <= 1 || pool->on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Static chunking: trials have similar cost, and static chunks keep the
  // seed->thread mapping irrelevant to results.
  const std::size_t chunks = std::min(count, pool->size() * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const std::size_t lo = begin + count * chunk / chunks;
    const std::size_t hi = begin + count * (chunk + 1) / chunks;
    if (lo == hi) continue;
    futures.push_back(pool->submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Drain every chunk before rethrowing: bailing out on the first exception
  // would destroy `body` (and the caller's captured state) while other
  // workers are still executing chunks that reference them.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace p2pvod::util
