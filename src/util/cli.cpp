#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace p2pvod::util {

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::vector<std::string> bare_flags) {
  if (argc > 0) program_ = argv[0];
  const auto is_bare = [&bare_flags](const std::string& name) {
    return std::find(bare_flags.begin(), bare_flags.end(), name) !=
           bare_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      token.erase(0, 2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        options_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (!is_bare(token) && i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[token] = argv[++i];
      } else {
        options_[token] = "true";  // bare flag
      }
    } else {
      positional_.push_back(std::move(token));
    }
  }
}

std::vector<std::string> ArgParser::option_names() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [name, value] : options_) out.push_back(name);
  return out;  // std::map iteration: already sorted
}

std::string ArgParser::env_name(const std::string& name) {
  std::string out = "P2PVOD_";
  for (const char ch : name) {
    out += (ch == '-') ? '_' : static_cast<char>(std::toupper(
                                   static_cast<unsigned char>(ch)));
  }
  return out;
}

bool ArgParser::has(const std::string& name) const {
  if (options_.count(name) != 0) return true;
  return std::getenv(env_name(name).c_str()) != nullptr;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  if (const auto it = options_.find(name); it != options_.end())
    return it->second;
  if (const char* env = std::getenv(env_name(name).c_str()); env != nullptr)
    return std::string(env);
  return std::nullopt;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  return get(name).value_or(fallback);
}

namespace {

/// Wraps the std::sto* conversions so a malformed option value surfaces as
/// the documented std::invalid_argument (with the option name) instead of a
/// bare std::out_of_range/invalid_argument from deep inside the parser.
template <typename Convert>
auto convert_option(const std::string& name, const std::string& value,
                    Convert convert) {
  try {
    return convert(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + ": invalid number '" +
                                value + "'");
  }
}

}  // namespace

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return convert_option(name, *value,
                        [](const std::string& v) { return std::stoll(v); });
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return convert_option(name, *value,
                        [](const std::string& v) { return std::stod(v); });
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return *value == "true" || *value == "1" || *value == "yes" || *value == "on";
}

std::uint64_t ArgParser::get_seed(const std::string& name,
                                  std::uint64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return convert_option(name, *value,
                        [](const std::string& v) { return std::stoull(v); });
}

double bench_scale() {
  if (const char* env = std::getenv("P2PVOD_SCALE"); env != nullptr) {
    try {
      const double scale = std::stod(env);
      if (scale > 0.0) return scale;
    } catch (const std::exception&) {
      // fall through to default
    }
  }
  return 1.0;
}

std::uint32_t scaled_count(std::uint32_t base, std::uint32_t min_value) {
  const double value = static_cast<double>(base) * bench_scale();
  // Clamp before rounding: llround on a double beyond long long's range is
  // unspecified, so an absurd P2PVOD_SCALE must not reach it.
  constexpr double kMax = 4294967295.0;
  if (value >= kMax) return 0xffffffffu;
  // Round to nearest: truncation made P2PVOD_SCALE=0.9 on a base of 3
  // silently yield 2 (a 33% cut for a 10% scale request).
  const long long rounded = std::llround(value);
  if (rounded <= static_cast<long long>(min_value)) return min_value;
  return static_cast<std::uint32_t>(rounded);
}

std::optional<long> env_positive_long(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return std::nullopt;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed <= 0) return std::nullopt;
  return parsed;
}

}  // namespace p2pvod::util
