#include "util/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace p2pvod::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      token.erase(0, 2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        options_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[token] = argv[++i];
      } else {
        options_[token] = "true";  // bare flag
      }
    } else {
      positional_.push_back(std::move(token));
    }
  }
}

std::string ArgParser::env_name(const std::string& name) {
  std::string out = "P2PVOD_";
  for (const char ch : name) {
    out += (ch == '-') ? '_' : static_cast<char>(std::toupper(
                                   static_cast<unsigned char>(ch)));
  }
  return out;
}

bool ArgParser::has(const std::string& name) const {
  if (options_.count(name) != 0) return true;
  return std::getenv(env_name(name).c_str()) != nullptr;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  if (const auto it = options_.find(name); it != options_.end())
    return it->second;
  if (const char* env = std::getenv(env_name(name).c_str()); env != nullptr)
    return std::string(env);
  return std::nullopt;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return std::stoll(*value);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return std::stod(*value);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return *value == "true" || *value == "1" || *value == "yes" || *value == "on";
}

std::uint64_t ArgParser::get_seed(const std::string& name,
                                  std::uint64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return std::stoull(*value);
}

double bench_scale() {
  if (const char* env = std::getenv("P2PVOD_SCALE"); env != nullptr) {
    try {
      const double scale = std::stod(env);
      if (scale > 0.0) return scale;
    } catch (const std::exception&) {
      // fall through to default
    }
  }
  return 1.0;
}

}  // namespace p2pvod::util
