#include "util/logmath.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace p2pvod::util {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double log_factorial(std::int64_t n) {
  if (n < 0) throw std::invalid_argument("log_factorial: negative argument");
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  if (k == 0 || k == n) return 0.0;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_compositions(std::int64_t size, std::int64_t distinct) {
  if (distinct <= 0 || size < distinct) return kNegInf;
  return log_binomial(size - 1, distinct - 1);
}

double log_sum_exp(std::span<const double> values) {
  if (values.empty()) return kNegInf;
  const double mx = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(mx)) return mx;  // all -inf, or a +inf dominates
  double acc = 0.0;
  for (const double v : values) acc += std::exp(v - mx);
  return mx + std::log(acc);
}

double log_add_exp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double mx = std::max(a, b);
  return mx + std::log1p(std::exp(std::min(a, b) - mx));
}

double exp_clamped(double x) {
  if (x > 709.0) return std::numeric_limits<double>::infinity();
  if (x < -745.0) return 0.0;
  return std::exp(x);
}

double xlogy(double x, double y) {
  if (x == 0.0) return 0.0;
  return x * std::log(y);
}

void LogSumAccumulator::add_log(double log_term) {
  ++count_;
  if (log_term == kNegInf) return;
  if (log_term > max_log_) {
    // Rescale the running sum to the new maximum.
    sum_scaled_ = sum_scaled_ * std::exp(max_log_ - log_term) + 1.0;
    max_log_ = log_term;
  } else {
    sum_scaled_ += std::exp(log_term - max_log_);
  }
}

double LogSumAccumulator::log_total() const {
  if (sum_scaled_ <= 0.0) return kNegInf;
  return max_log_ + std::log(sum_scaled_);
}

double LogSumAccumulator::total() const { return exp_clamped(log_total()); }

}  // namespace p2pvod::util
