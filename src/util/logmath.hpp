// Log-space combinatorics used by the analytical model (src/analysis).
//
// The first-moment sums of Theorem 1 involve terms like C(mc, i1) * (i/u'nc)^{k i1}
// whose magnitudes overflow double range for realistic n; everything here is
// therefore computed in natural-log space with lgamma, plus a numerically
// stable log-sum-exp reducer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace p2pvod::util {

/// Natural log of n! via lgamma. n must be >= 0.
[[nodiscard]] double log_factorial(std::int64_t n);

/// Natural log of the binomial coefficient C(n, k).
/// Returns -infinity when the coefficient is zero (k < 0 or k > n).
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// Natural log of the number of multisets of size `size` drawn from a ground
/// set of `distinct` elements that use *exactly* `distinct` distinct values:
/// log C(size-1, distinct-1) (stars and bars). -inf when impossible.
[[nodiscard]] double log_compositions(std::int64_t size, std::int64_t distinct);

/// Numerically stable log(sum(exp(x_i))) over a span. Empty span -> -inf.
[[nodiscard]] double log_sum_exp(std::span<const double> values);

/// Stable log(exp(a) + exp(b)).
[[nodiscard]] double log_add_exp(double a, double b);

/// exp(x) clamped so that the result never overflows (+inf) silently:
/// values above ~709 return +infinity which callers treat as "bound useless".
[[nodiscard]] double exp_clamped(double x);

/// Binary entropy-style helper: x * log(y) with the convention 0 * log(0) = 0.
[[nodiscard]] double xlogy(double x, double y);

/// Accumulates a sum of probabilities supplied in log space; exposes the total
/// in log space. Useful for the obstruction union bound where millions of
/// tiny terms are added.
class LogSumAccumulator {
 public:
  void add_log(double log_term);
  /// log of the accumulated sum; -inf when empty.
  [[nodiscard]] double log_total() const;
  /// Accumulated sum in linear space (may be +inf or underflow to 0).
  [[nodiscard]] double total() const;
  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  double max_log_ = -1e308;
  double sum_scaled_ = 0.0;  // sum of exp(term - max_log_)
  std::size_t count_ = 0;
};

}  // namespace p2pvod::util
