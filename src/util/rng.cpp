#include "util/rng.hpp"

#include <cmath>

namespace p2pvod::util {

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection only in the biased strip.
  std::uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1ULL;  // hi == lo gives span 1
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0, 1) with full double precision.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double rate) noexcept {
  // Inverse CDF; guard against log(0).
  double x = next_double();
  while (x <= 0.0) x = next_double();
  return -std::log(x) / rate;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t count) {
  std::vector<std::uint32_t> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = i;
  shuffle(out);
  return out;
}

}  // namespace p2pvod::util
