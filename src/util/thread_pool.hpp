// Minimal work-stealing-free thread pool plus parallel_for helpers.
//
// Monte-Carlo experiments (many independent trials) are the only parallel
// workload in this library; trials carry deterministic child seeds so results
// are identical regardless of thread count or scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace p2pvod::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submit a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers. Parallel
  /// helpers use this to degrade to a serial loop instead of deadlocking:
  /// a worker that blocked on nested futures would wait for queue slots that
  /// only it could drain.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Global pool shared by the library's parallel helpers. Sized from the
  /// P2PVOD_THREADS environment variable when set (> 0), else from
  /// hardware_concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run body(i) for i in [begin, end) across the pool; blocks until all done.
/// Falls back to a serial loop when the range is tiny or the pool has a
/// single thread (avoids pointless contention on one-core machines).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// Map-reduce over [0, count): results[i] = map(i), combined serially in index
/// order so reduction is deterministic.
template <typename Result>
std::vector<Result> parallel_map(std::size_t count,
                                 const std::function<Result(std::size_t)>& map,
                                 ThreadPool* pool = nullptr) {
  std::vector<Result> results(count);
  parallel_for(
      0, count, [&](std::size_t i) { results[i] = map(i); }, pool);
  return results;
}

}  // namespace p2pvod::util
