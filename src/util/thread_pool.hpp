// Work-stealing thread pool plus parallel_for helpers.
//
// Monte-Carlo experiments (many independent trials) are the dominant parallel
// workload in this library; trials carry deterministic child seeds so results
// are identical regardless of thread count or scheduling order. The executor
// therefore optimizes throughput freely — scheduling never leaks into output.
//
// Structure: every worker owns a small array of deques, one per priority
// level. A worker pushes and pops its own work LIFO (hot caches, bounded
// space under nested submission) and steals FIFO from a victim's opposite end
// (oldest task first, the one least likely to be in the victim's cache).
// External submitters distribute round-robin across the worker deques, so
// there is no single contended queue. Deques are guarded by one mutex per
// worker — steals use try_lock so a contended victim is skipped, which makes
// the fast paths lock-free-ish in practice without the memory-ordering
// hazards of a full Chase-Lev deque.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace p2pvod::util {

/// Scheduling classes for submitted tasks. Workers drain higher priorities
/// first (both on the local LIFO pop and on the steal path); within one level
/// ordering is unspecified. Calibration probes use kHigh so speculative
/// ladders overtake bulk trial chunks already queued at kNormal.
enum class TaskPriority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

inline constexpr std::size_t kTaskPriorityCount = 3;

/// Cumulative scheduling counters for one pool instance. Every task leaves a
/// queue through exactly one of pop_local (own deque) or steal (another
/// deque), so after all submitted futures complete,
/// submitted == executed_local + executed_stolen — the exactly-once
/// accounting the concurrency tests assert. helping_runs counts the subset
/// executed through try_run_one()/wait() (a waiter pitching in), and
/// per_worker_executed[i] counts tasks that ran on worker thread i. All of
/// these depend on scheduling, so the mirrored obs metrics ("pool/...") are
/// tagged Stability::kScheduling and excluded from cross-thread-count
/// determinism checks.
struct PoolStats {
  std::uint64_t submitted = 0;        ///< tasks accepted by submit()
  std::uint64_t executed_local = 0;   ///< dequeued LIFO by the owning worker
  std::uint64_t executed_stolen = 0;  ///< dequeued FIFO from another deque
  std::uint64_t helping_runs = 0;     ///< ran via try_run_one()/wait()
  std::vector<std::uint64_t> per_worker_executed;  ///< ran on worker i

  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_local + executed_stolen;
  }
};

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submit a task at kNormal priority; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);
  std::future<void> submit(std::function<void()> task, TaskPriority priority);

  /// True when the calling thread is one of this pool's workers. Parallel
  /// helpers use this to degrade to a serial loop instead of deadlocking:
  /// a worker that blocked on nested futures would wait for queue slots that
  /// only it could drain.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// The pool owning the calling thread, or nullptr when the caller is not a
  /// pool worker at all. Lets top-level helpers (speculative calibration)
  /// detect nesting across distinct pools, not just within one.
  [[nodiscard]] static ThreadPool* current() noexcept;

  /// True while the calling thread is executing chunks inside a
  /// parallel_for claiming loop. Non-worker callers run chunks themselves,
  /// so `current() == nullptr` alone under-detects nesting; helpers that
  /// degrade under nested parallelism check both.
  [[nodiscard]] static bool inside_parallel_for() noexcept;

  /// Execute one pending task on the calling thread if any is available
  /// (own deque first for workers, then a steal sweep). Returns false when
  /// nothing was run. Safe to call from any thread.
  bool try_run_one();

  /// Block until `future` is ready, executing pending pool tasks while
  /// waiting ("helping"). This is what makes nested submit-then-wait safe at
  /// any pool size: a worker waiting on a task it just queued will execute
  /// it itself rather than deadlock. Tradeoff of the explicit opt-in: the
  /// helped task is arbitrary (any queue, any priority) and runs nested on
  /// the waiter's stack — callers with deep chains of waits-inside-tasks
  /// should bound that nesting themselves. parallel_for does not use this;
  /// it only executes chunks of its own loop.
  void wait(std::future<void>& future);

  /// Global pool shared by the library's parallel helpers. Sized from the
  /// P2PVOD_THREADS environment variable when set (> 0), else from
  /// hardware_concurrency.
  static ThreadPool& global();

  /// Snapshot of this pool's cumulative scheduling counters. Consistent (the
  /// exactly-once identity holds) once all submitted futures have completed;
  /// a mid-flight read may see a task submitted but not yet executed.
  [[nodiscard]] PoolStats stats() const;

 private:
  using Task = std::packaged_task<void()>;

  /// One worker's deques, all priority levels under a single mutex. Owner
  /// pushes/pops at the back (LIFO), thieves pop at the front (FIFO).
  struct WorkerQueue {
    std::mutex mutex;
    std::array<std::deque<Task>, kTaskPriorityCount> tasks;
    /// Tasks executed BY this queue's owning worker thread (wherever they
    /// were dequeued from), for PoolStats::per_worker_executed.
    std::atomic<std::uint64_t> executed{0};
  };

  void worker_loop(std::size_t self);
  void push(std::size_t target, Task task, TaskPriority priority);
  bool pop_local(std::size_t self, Task& out);
  /// Steal sweep over every queue except `self` (pass size() to sweep all,
  /// e.g. from threads that are not workers of this pool).
  bool steal(std::size_t self, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Tasks queued but not yet popped, across all deques. Incremented BEFORE
  /// a task is published (never after — a steal racing a late increment
  /// would wrap the counter), decremented on successful pop/steal. Workers
  /// sleep only when this is zero.
  std::atomic<std::size_t> pending_{0};
  /// Workers currently blocked (or about to block) on idle_cv_. Lets the
  /// submit fast path skip the shared idle_mutex_ + notify when nobody is
  /// asleep; modified only under idle_mutex_ so the wakeup handshake stays
  /// lossless.
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin external target
  /// PoolStats sources (relaxed; read via stats()). Dequeue-site counters —
  /// every task is counted at the pop_local/steal that removes it, exactly
  /// once, regardless of which thread then runs it.
  std::atomic<std::uint64_t> stat_submitted_{0};
  std::atomic<std::uint64_t> stat_executed_local_{0};
  std::atomic<std::uint64_t> stat_executed_stolen_{0};
  std::atomic<std::uint64_t> stat_helping_runs_{0};
  std::atomic<bool> stopping_{false};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

/// Run body(i) for i in [begin, end) across the pool; blocks until all done.
/// Falls back to a serial loop when the range is tiny, the pool has a single
/// thread, or the caller is already one of the pool's workers (nested
/// parallelism guard). `grain` is the number of consecutive indices per
/// chunk: 0 reads P2PVOD_GRAIN, else defaults to count / (4 * workers)
/// rounded up. Chunk boundaries depend only on (range, grain, pool size),
/// never on scheduling, so deterministic bodies stay deterministic. The
/// calling thread executes chunks of THIS loop alongside the workers (never
/// arbitrary other pool tasks, so waiting cannot nest unrelated work or
/// invert priorities).
/// `priority` is the level the chunks are submitted at — latency-sensitive
/// work (speculative calibration ladders) uses kHigh to overtake bulk chunks
/// already queued at kNormal.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr, std::size_t grain = 0,
                  TaskPriority priority = TaskPriority::kNormal);

/// Map-reduce over [0, count): results[i] = map(i), combined serially in index
/// order so reduction is deterministic.
template <typename Result>
std::vector<Result> parallel_map(std::size_t count,
                                 const std::function<Result(std::size_t)>& map,
                                 ThreadPool* pool = nullptr,
                                 std::size_t grain = 0,
                                 TaskPriority priority = TaskPriority::kNormal) {
  std::vector<Result> results(count);
  parallel_for(
      0, count, [&](std::size_t i) { results[i] = map(i); }, pool, grain,
      priority);
  return results;
}

}  // namespace p2pvod::util
