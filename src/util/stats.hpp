// Lightweight statistics used by experiment harnesses and reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace p2pvod::util {

/// Welford online accumulator: mean / variance / min / max in one pass.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Exact running total (Neumaier-compensated), not mean·count — the
  /// Welford mean carries per-sample rounding that a reconstructed sum
  /// amplifies by count under catastrophic cancellation.
  [[nodiscard]] double sum() const noexcept { return sum_ + comp_; }

  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation; fine for the trial counts we run).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;   ///< compensated running total
  double comp_ = 0.0;  ///< Neumaier compensation term for sum_
};

/// Exact quantile of a sample (linear interpolation between order statistics).
/// q in [0,1]; empty input throws.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Convenience bundle of the usual summary quantiles.
struct QuantileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};
[[nodiscard]] QuantileSummary summarize_quantiles(std::vector<double> values);

/// Wilson score interval for a binomial proportion (successes out of trials);
/// far better behaved than the normal interval for success rates near 0 or 1,
/// which is exactly where our feasibility experiments live.
struct Proportion {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};
[[nodiscard]] Proportion wilson_interval(std::size_t successes,
                                         std::size_t trials,
                                         double z = 1.96);

/// Integer histogram with mean/percentile extraction; used for startup-delay
/// and box-load distributions.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  /// Smallest value v such that at least q of the mass is <= v.
  [[nodiscard]] std::int64_t percentile(double q) const;
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  /// Render as "value:count" pairs, for report dumps.
  [[nodiscard]] std::string to_string(std::size_t max_buckets = 16) const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace p2pvod::util
