#include "obs/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/stats.hpp"

namespace p2pvod::obs {

namespace {

constexpr const char* kSchema = "p2pvod-perf-trajectory-v1";

/// Median of a sorted sample (even count: midpoint of the middle pair).
double sorted_median(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return sorted[n / 2];
  return (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
}

double number_at(const util::json::Value& object, const char* key) {
  const util::json::Value* field = object.find(key);
  if (field == nullptr || !field->is_number())
    throw std::runtime_error(std::string("trajectory: missing number \"") +
                             key + "\"");
  return field->as_number();
}

}  // namespace

WallStats WallStats::reduce(std::vector<double> samples) {
  WallStats stats;
  stats.runs = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.median = sorted_median(samples);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double sample : samples)
    deviations.push_back(std::abs(sample - stats.median));
  std::sort(deviations.begin(), deviations.end());
  stats.mad = sorted_median(deviations);
  // Welford pass in sorted order: canonical accumulation order makes the
  // mean/stddev independent of the order the runs were handed in.
  util::OnlineStats online;
  for (const double sample : samples) online.add(sample);
  stats.mean = online.mean();
  stats.stddev = online.stddev();
  stats.min = online.min();
  stats.max = online.max();
  return stats;
}

util::json::Value WallStats::to_json() const {
  using util::json::Value;
  Value entry{Value::Object{}};
  entry.set("runs", static_cast<std::uint64_t>(runs));
  entry.set("median", median);
  entry.set("mad", mad);
  entry.set("mean", mean);
  entry.set("stddev", stddev);
  entry.set("min", min);
  entry.set("max", max);
  return entry;
}

WallStats WallStats::from_json(const util::json::Value& value) {
  WallStats stats;
  stats.runs = static_cast<std::size_t>(number_at(value, "runs"));
  stats.median = number_at(value, "median");
  stats.mad = number_at(value, "mad");
  stats.mean = number_at(value, "mean");
  stats.stddev = number_at(value, "stddev");
  stats.min = number_at(value, "min");
  stats.max = number_at(value, "max");
  return stats;
}

util::json::Value Trajectory::to_json() const {
  using util::json::Value;
  Value doc{Value::Object{}};
  doc.set("schema", kSchema);
  Value::Array point_entries;
  point_entries.reserve(points.size());
  for (const TrajectoryPoint& point : points) {
    Value entry{Value::Object{}};
    entry.set("label", point.label);
    entry.set("scale", point.scale);
    Value scenarios{Value::Object{}};
    for (const auto& [id, perf] : point.scenarios) {
      Value scenario{Value::Object{}};
      scenario.set("total", perf.total.to_json());
      Value stages{Value::Object{}};
      for (const auto& [name, stats] : perf.stages)
        stages.set(name, stats.to_json());
      scenario.set("stages", std::move(stages));
      scenarios.set(id, std::move(scenario));
    }
    entry.set("scenarios", std::move(scenarios));
    point_entries.push_back(std::move(entry));
  }
  doc.set("points", std::move(point_entries));
  return doc;
}

Trajectory Trajectory::from_json(const util::json::Value& value) {
  if (!value.is_object())
    throw std::runtime_error("trajectory: document is not a JSON object");
  const util::json::Value* schema = value.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    throw std::runtime_error(std::string("trajectory: expected schema \"") +
                             kSchema + "\"");
  }
  const util::json::Value* point_entries = value.find("points");
  if (point_entries == nullptr || !point_entries->is_array())
    throw std::runtime_error("trajectory: missing \"points\" array");
  Trajectory trajectory;
  for (const util::json::Value& entry : point_entries->as_array()) {
    TrajectoryPoint point;
    const util::json::Value* label = entry.find("label");
    if (label == nullptr || !label->is_string())
      throw std::runtime_error("trajectory: point missing \"label\"");
    point.label = label->as_string();
    point.scale = number_at(entry, "scale");
    const util::json::Value* scenarios = entry.find("scenarios");
    if (scenarios == nullptr || !scenarios->is_object())
      throw std::runtime_error("trajectory: point missing \"scenarios\"");
    for (const auto& [id, scenario] : scenarios->as_object()) {
      ScenarioPerf perf;
      perf.total = WallStats::from_json(scenario.at("total"));
      const util::json::Value* stages = scenario.find("stages");
      if (stages != nullptr && stages->is_object()) {
        for (const auto& [name, stats] : stages->as_object())
          perf.stages.emplace(name, WallStats::from_json(stats));
      }
      point.scenarios.emplace(id, std::move(perf));
    }
    trajectory.points.push_back(std::move(point));
  }
  return trajectory;
}

const TrajectoryPoint* Trajectory::reference(double scale) const noexcept {
  for (auto it = points.rbegin(); it != points.rend(); ++it)
    if (it->scale == scale) return &*it;
  return nullptr;
}

std::vector<GateFinding> gate_compare(const TrajectoryPoint& candidate,
                                      const Trajectory& history,
                                      const GateOptions& options) {
  std::vector<GateFinding> findings;
  const TrajectoryPoint* reference = history.reference(candidate.scale);
  if (reference == nullptr) return findings;

  const auto band = [&](const WallStats& ref, const WallStats& cand) {
    return std::max(options.abs_slack,
                    std::max(options.rel_tol * ref.median,
                             options.mad_factor * (ref.mad + cand.mad)));
  };
  const auto compare = [&](const std::string& scenario,
                           const std::string& stage, const WallStats& ref,
                           const WallStats& cand) {
    GateFinding finding;
    finding.scenario = scenario;
    finding.stage = stage;
    finding.reference_median = ref.median;
    finding.candidate_median = cand.median;
    finding.limit = ref.median + band(ref, cand);
    finding.regression = cand.median > finding.limit;
    findings.push_back(std::move(finding));
  };

  for (const auto& [id, cand_perf] : candidate.scenarios) {
    const auto ref_it = reference->scenarios.find(id);
    if (ref_it == reference->scenarios.end()) continue;  // new scenario
    compare(id, "", ref_it->second.total, cand_perf.total);
    for (const auto& [stage, cand_stats] : cand_perf.stages) {
      const auto ref_stage = ref_it->second.stages.find(stage);
      if (ref_stage == ref_it->second.stages.end()) continue;  // new stage
      compare(id, stage, ref_stage->second, cand_stats);
    }
  }
  return findings;
}

TrajectoryPoint reduce_bench_runs(
    const std::vector<util::json::Value>& documents, std::string label) {
  TrajectoryPoint point;
  point.label = std::move(label);
  if (documents.empty())
    throw std::runtime_error("trajectory: no BENCH documents to reduce");

  // Gather per-scenario samples across the repeated runs.
  std::map<std::string, std::vector<double>> totals;
  std::map<std::string, std::map<std::string, std::vector<double>>> stages;
  bool scale_seen = false;
  for (const util::json::Value& doc : documents) {
    const util::json::Value* id = doc.find("id");
    if (id == nullptr || !id->is_string())
      throw std::runtime_error("trajectory: BENCH document missing \"id\"");
    const double scale = number_at(doc, "scale");
    if (!scale_seen) {
      point.scale = scale;
      scale_seen = true;
    } else if (scale != point.scale) {
      throw std::runtime_error(
          "trajectory: BENCH documents mix scales (" +
          std::to_string(point.scale) + " vs " + std::to_string(scale) + ")");
    }
    totals[id->as_string()].push_back(number_at(doc, "wall_seconds"));
    const util::json::Value* stage_entries = doc.find("stages");
    if (stage_entries == nullptr || !stage_entries->is_array())
      throw std::runtime_error(
          "trajectory: BENCH document missing \"stages\" array");
    for (const util::json::Value& stage : stage_entries->as_array()) {
      const util::json::Value* name = stage.find("name");
      if (name == nullptr || !name->is_string())
        throw std::runtime_error("trajectory: stage missing \"name\"");
      stages[id->as_string()][name->as_string()].push_back(
          number_at(stage, "wall_seconds"));
    }
  }

  for (auto& [id, samples] : totals) {
    ScenarioPerf perf;
    perf.total = WallStats::reduce(std::move(samples));
    for (auto& [name, stage_samples] : stages[id])
      perf.stages.emplace(name, WallStats::reduce(std::move(stage_samples)));
    point.scenarios.emplace(id, std::move(perf));
  }
  return point;
}

}  // namespace p2pvod::obs
