// Span-aggregated call-tree profiles built from TraceSession events.
//
// A raw Chrome trace answers "what happened when"; a profile answers "where
// did the time go". Profile::from_events folds the 'X' (complete) events of
// one TraceSession into a per-thread call tree keyed by span-name path:
// parent/child edges come from span nesting (a span whose [ts, ts+dur)
// interval lies inside another span's interval on the same thread is its
// child), and every tree node aggregates
//
//   - count     — how many spans landed on this path,
//   - total_ns  — inclusive time (sum of span durations),
//   - self_ns   — exclusive time (total minus direct children's totals),
//   - a log2-bucket duration histogram, from which p50/p95/p99 estimates
//     are derived (deterministic integer math: a quantile reports the upper
//     bound of the bucket holding that rank, never an interpolation).
//
// Two export formats: a JSON document ("p2pvod-profile-v1", validated by
// p2pvod_trace_check --profile) and flamegraph-compatible collapsed-stack
// text ("a;b;c <self_ns>" per line — feed to flamegraph.pl --countname=ns).
//
// Determinism: given the same event vector the output is byte-identical —
// children are name-ordered maps, threads are tid-ordered, and quantiles are
// bucket bounds. The *values* are wall-clock durations, so profile documents
// are wall-clock artifacts like traces: never baseline-diffed, and writing
// them must not perturb BENCH output (the runner sends notices to stderr).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace p2pvod::obs {

/// One node of an aggregated call tree. `children` is name-keyed (ordered)
/// so traversals and exports are deterministic.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  /// duration_log2[i] counts spans whose duration has bit-width i, i.e.
  /// bucket 0 holds zero-duration spans and bucket i (i >= 1) holds
  /// durations in [2^(i-1), 2^i - 1]. Trailing zero buckets are trimmed.
  std::vector<std::uint64_t> duration_log2;
  std::map<std::string, ProfileNode> children;

  /// Smallest bucket upper bound whose cumulative count reaches rank
  /// ceil(q * count); 0 when the node has no spans. Deterministic (integer
  /// arithmetic over bucket counts, no interpolation).
  [[nodiscard]] std::uint64_t quantile_ns(double q) const noexcept;
};

/// Call tree of one thread. `root` is synthetic (empty name, zero times);
/// its children are the thread's top-level spans.
struct ThreadProfile {
  std::uint32_t tid = 0;
  ProfileNode root;
};

class Profile {
 public:
  /// Aggregate the 'X' events of one TraceSession::stop() result. Events
  /// may arrive in any order; they are grouped per tid and re-sorted by
  /// (start, duration descending) so an enclosing span always precedes the
  /// spans it contains, even on clocks coarse enough to produce ties.
  [[nodiscard]] static Profile from_events(
      const std::vector<TraceEvent>& events);

  /// Per-thread trees, tid-ascending.
  [[nodiscard]] const std::vector<ThreadProfile>& threads() const noexcept {
    return threads_;
  }

  /// All threads merged into one tree by span-name path (counts, times and
  /// histograms added per path).
  [[nodiscard]] ProfileNode merged() const;

  [[nodiscard]] bool empty() const noexcept { return threads_.empty(); }

  /// Total number of spans aggregated across all threads.
  [[nodiscard]] std::uint64_t span_count() const noexcept;

  /// The "p2pvod-profile-v1" document: schema/unit header plus one
  /// {tid, spans: [node...]} entry per thread, nodes carrying
  /// name/count/total_ns/self_ns/p50_ns/p95_ns/p99_ns/children.
  [[nodiscard]] util::json::Value to_json() const;

  /// Flamegraph collapsed-stack text over the merged tree: one
  /// "path;to;node <self_ns>" line per node, pre-order, name-sorted.
  [[nodiscard]] std::string to_collapsed() const;

  /// Write <dir>/PROFILE_<id>.json and <dir>/PROFILE_<id>.collapsed,
  /// creating `dir` as needed. Throws std::runtime_error on I/O failure.
  void write_files(const std::string& dir, const std::string& id) const;

 private:
  std::vector<ThreadProfile> threads_;
};

}  // namespace p2pvod::obs
