// Span/instant tracing with Chrome trace-event JSON output.
//
// A TraceSession is a process-wide recording window. While one is active,
// OBS_SPAN("module/name") records a RAII "complete" event ('X': begin + dur)
// into a per-thread ring buffer, and OBS_INSTANT records a point event ('i').
// stop_to_file() merges the rings, sorts by timestamp, and writes the
// Chrome/Perfetto trace-event format — load the file at ui.perfetto.dev or
// chrome://tracing.
//
// Cost model: with no active session the macros reduce to one relaxed atomic
// load and a branch (and can be compiled out entirely with
// -DP2PVOD_OBS_NO_TRACE). While recording, events land in a fixed-capacity
// per-thread ring that overwrites its oldest entries — the tail of a run is
// what you usually need — and drops are counted in the scheduling-tagged
// "obs/trace_dropped_events" metric, so truncation is visible rather than
// silent.
//
// Timestamps come from obs::monotonic_ns() (the single allowlisted clock TU);
// traces are wall-clock artifacts and are never baseline-diffed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace p2pvod::obs {

struct TraceEvent {
  std::string name;
  char phase = 'X';         ///< 'X' complete, 'i' instant
  std::uint64_t ts_ns = 0;  ///< monotonic_ns at span begin / instant
  std::uint64_t dur_ns = 0; ///< span duration ('X' only)
  std::uint32_t tid = 0;    ///< small per-thread id (registration order)
};

/// Process-wide trace recording control. At most one session is active at a
/// time; start() while active is a no-op (the scenario runner opens one
/// session per scenario).
class TraceSession {
 public:
  struct Options {
    /// Events retained per thread; older events are overwritten.
    std::size_t ring_capacity = 1 << 14;
  };

  /// Begin recording. Clears buffers left over from earlier sessions.
  static void start() { start(Options{}); }
  static void start(Options options);

  /// True while a session is recording (one relaxed load).
  static bool active() noexcept;

  /// Stop recording and return all retained events merged across threads,
  /// sorted by (ts_ns, tid). No-op empty result when no session was active.
  static std::vector<TraceEvent> stop();

  /// Stop recording and write the Chrome trace-event JSON document to
  /// `path`, creating parent directories as needed. Throws
  /// std::runtime_error on I/O failure.
  static void stop_to_file(const std::string& path);

  /// Write already-collected events as a Chrome trace-event JSON document
  /// (same format as stop_to_file); lets one stop() feed both the trace
  /// file and the profile aggregation. Throws std::runtime_error on I/O
  /// failure.
  static void write_file(const std::string& path,
                         const std::vector<TraceEvent>& events);

  /// Events dropped (ring overwrites) during the current/last session.
  [[nodiscard]] static std::uint64_t dropped_events() noexcept;

  /// Serialize events as a Chrome trace-event JSON string; ts values are
  /// microseconds relative to the earliest event.
  [[nodiscard]] static std::string to_chrome_json(
      const std::vector<TraceEvent>& events);
};

namespace detail {
/// Record sites used by the guard classes; no-ops when no session is active.
void record_complete(const char* name, std::uint64_t start_ns,
                     std::uint64_t dur_ns);
void record_complete(std::string name, std::uint64_t start_ns,
                     std::uint64_t dur_ns);
void record_instant(const char* name);
}  // namespace detail

/// RAII span with a static-lifetime name (string literal at the call site).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) noexcept {
    if (TraceSession::active()) {
      name_ = name;
      start_ = monotonic_ns();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr)
      detail::record_complete(name_, start_, monotonic_ns() - start_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

/// RAII span whose name is built at runtime (stage names); the string is
/// only constructed when a session is active.
class DynamicSpanGuard {
 public:
  template <typename NameFn>
  explicit DynamicSpanGuard(const NameFn& make_name) {
    if (TraceSession::active()) {
      name_ = make_name();
      active_ = true;
      start_ = monotonic_ns();
    }
  }
  ~DynamicSpanGuard() {
    if (active_)
      detail::record_complete(std::move(name_), start_,
                              monotonic_ns() - start_);
  }
  DynamicSpanGuard(const DynamicSpanGuard&) = delete;
  DynamicSpanGuard& operator=(const DynamicSpanGuard&) = delete;

 private:
  std::string name_;
  bool active_ = false;
  std::uint64_t start_ = 0;
};

}  // namespace p2pvod::obs

#define P2PVOD_OBS_CONCAT_IMPL(a, b) a##b
#define P2PVOD_OBS_CONCAT(a, b) P2PVOD_OBS_CONCAT_IMPL(a, b)

#ifdef P2PVOD_OBS_NO_TRACE
#define OBS_SPAN(name) \
  do {                 \
  } while (false)
#define OBS_SPAN_DYN(make_name) \
  do {                          \
  } while (false)
#define OBS_INSTANT(name) \
  do {                    \
  } while (false)
#else
/// Span covering the enclosing scope; `name` must be a string literal (or
/// other static-lifetime C string), by convention "module/what".
#define OBS_SPAN(name)                                 \
  const ::p2pvod::obs::SpanGuard P2PVOD_OBS_CONCAT(    \
      obs_span_, __LINE__) {                           \
    name                                               \
  }
/// Span with a lazily built name: OBS_SPAN_DYN([&] { return "x/" + id; }).
#define OBS_SPAN_DYN(make_name)                            \
  const ::p2pvod::obs::DynamicSpanGuard P2PVOD_OBS_CONCAT( \
      obs_span_, __LINE__) {                               \
    make_name                                              \
  }
/// Point-in-time marker.
#define OBS_INSTANT(name)                                        \
  do {                                                           \
    if (::p2pvod::obs::TraceSession::active())                   \
      ::p2pvod::obs::detail::record_instant(name);               \
  } while (false)
#endif
