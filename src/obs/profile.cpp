#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

namespace p2pvod::obs {

namespace {

/// Number of bits needed to represent `value` (0 for 0) — the log2 bucket
/// index of a span duration.
std::size_t bit_width_u64(std::uint64_t value) noexcept {
  std::size_t width = 0;
  while (value != 0) {
    value >>= 1U;
    ++width;
  }
  return width;
}

/// Upper bound of log2 bucket `index`: bucket 0 holds only zeros, bucket i
/// holds [2^(i-1), 2^i - 1].
std::uint64_t bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) return 0;
  if (index >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << index) - 1;
}

void observe_duration(ProfileNode& node, std::uint64_t dur_ns) {
  const std::size_t bucket = bit_width_u64(dur_ns);
  if (node.duration_log2.size() <= bucket)
    node.duration_log2.resize(bucket + 1, 0);
  ++node.duration_log2[bucket];
}

/// self = total - sum(direct children's totals), clamped at zero: ring-drop
/// truncation can orphan children whose parents were overwritten, so the
/// arithmetic identity is best-effort rather than an invariant of the input.
void finalize_self(ProfileNode& node) {
  std::uint64_t child_total = 0;
  for (auto& [name, child] : node.children) {
    finalize_self(child);
    child_total += child.total_ns;
  }
  node.self_ns = node.total_ns > child_total ? node.total_ns - child_total : 0;
}

void merge_into(ProfileNode& into, const ProfileNode& from) {
  into.count += from.count;
  into.total_ns += from.total_ns;
  into.self_ns += from.self_ns;
  if (into.duration_log2.size() < from.duration_log2.size())
    into.duration_log2.resize(from.duration_log2.size(), 0);
  for (std::size_t i = 0; i < from.duration_log2.size(); ++i)
    into.duration_log2[i] += from.duration_log2[i];
  for (const auto& [name, child] : from.children) {
    ProfileNode& target = into.children[name];
    target.name = name;
    merge_into(target, child);
  }
}

util::json::Value node_to_json(const ProfileNode& node) {
  using util::json::Value;
  Value entry{Value::Object{}};
  entry.set("name", node.name);
  entry.set("count", node.count);
  entry.set("total_ns", node.total_ns);
  entry.set("self_ns", node.self_ns);
  entry.set("p50_ns", node.quantile_ns(0.50));
  entry.set("p95_ns", node.quantile_ns(0.95));
  entry.set("p99_ns", node.quantile_ns(0.99));
  Value::Array children;
  children.reserve(node.children.size());
  for (const auto& [name, child] : node.children)
    children.push_back(node_to_json(child));
  entry.set("children", std::move(children));
  return entry;
}

void collapse_node(const ProfileNode& node, const std::string& prefix,
                   std::string& out) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  out += path;
  out += ' ';
  out += std::to_string(node.self_ns);
  out += '\n';
  for (const auto& [name, child] : node.children)
    collapse_node(child, path, out);
}

}  // namespace

std::uint64_t ProfileNode::quantile_ns(double q) const noexcept {
  if (count == 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < duration_log2.size(); ++i) {
    cumulative += duration_log2[i];
    if (cumulative >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(duration_log2.empty() ? 0
                                                  : duration_log2.size() - 1);
}

Profile Profile::from_events(const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> spans;
  spans.reserve(events.size());
  for (const TraceEvent& event : events)
    if (event.phase == 'X') spans.push_back(&event);

  // (tid, start asc, duration desc, name) ordering makes an enclosing span
  // precede everything it contains even when a coarse clock produces start
  // ties, and is a total order — the tree is independent of input order.
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->tid != b->tid) return a->tid < b->tid;
              if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
              if (a->dur_ns != b->dur_ns) return a->dur_ns > b->dur_ns;
              return a->name < b->name;
            });

  Profile profile;
  struct Frame {
    std::uint64_t end_ns = 0;
    ProfileNode* node = nullptr;
  };
  std::vector<Frame> stack;
  ThreadProfile* thread = nullptr;
  for (const TraceEvent* span : spans) {
    if (thread == nullptr || thread->tid != span->tid) {
      profile.threads_.push_back(ThreadProfile{span->tid, ProfileNode{}});
      thread = &profile.threads_.back();
      stack.clear();
    }
    // A span starting at or past an open span's end is a sibling (or uncle),
    // not a child.
    while (!stack.empty() && span->ts_ns >= stack.back().end_ns)
      stack.pop_back();
    ProfileNode& parent = stack.empty() ? thread->root : *stack.back().node;
    ProfileNode& node = parent.children[span->name];
    node.name = span->name;
    ++node.count;
    node.total_ns += span->dur_ns;
    observe_duration(node, span->dur_ns);
    stack.push_back(Frame{span->ts_ns + span->dur_ns, &node});
  }

  for (ThreadProfile& entry : profile.threads_) finalize_self(entry.root);
  return profile;
}

ProfileNode Profile::merged() const {
  ProfileNode root;
  for (const ThreadProfile& thread : threads_) {
    for (const auto& [name, child] : thread.root.children) {
      ProfileNode& target = root.children[name];
      target.name = name;
      merge_into(target, child);
    }
  }
  return root;
}

std::uint64_t Profile::span_count() const noexcept {
  std::uint64_t total = 0;
  for (const ThreadProfile& thread : threads_) {
    std::vector<const ProfileNode*> pending;
    for (const auto& [name, child] : thread.root.children)
      pending.push_back(&child);
    while (!pending.empty()) {
      const ProfileNode* node = pending.back();
      pending.pop_back();
      total += node->count;
      for (const auto& [name, child] : node->children)
        pending.push_back(&child);
    }
  }
  return total;
}

util::json::Value Profile::to_json() const {
  using util::json::Value;
  Value doc{Value::Object{}};
  doc.set("schema", "p2pvod-profile-v1");
  doc.set("unit", "ns");
  doc.set("span_count", span_count());
  Value::Array threads;
  threads.reserve(threads_.size());
  for (const ThreadProfile& thread : threads_) {
    Value entry{Value::Object{}};
    entry.set("tid", static_cast<std::uint64_t>(thread.tid));
    Value::Array spans;
    spans.reserve(thread.root.children.size());
    for (const auto& [name, child] : thread.root.children)
      spans.push_back(node_to_json(child));
    entry.set("spans", std::move(spans));
    threads.push_back(std::move(entry));
  }
  doc.set("threads", std::move(threads));
  return doc;
}

std::string Profile::to_collapsed() const {
  const ProfileNode root = merged();
  std::string out;
  for (const auto& [name, child] : root.children)
    collapse_node(child, "", out);
  return out;
}

void Profile::write_files(const std::string& dir,
                          const std::string& id) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string json_path = dir + "/PROFILE_" + id + ".json";
  util::json::write_file(json_path, to_json());
  const std::string collapsed_path = dir + "/PROFILE_" + id + ".collapsed";
  std::ofstream out(collapsed_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Profile: cannot open " + collapsed_path);
  out << to_collapsed();
  if (!out)
    throw std::runtime_error("Profile: write failed: " + collapsed_path);
}

}  // namespace p2pvod::obs
