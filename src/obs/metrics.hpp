// Deterministic process-wide metrics: counters, gauges, fixed-bucket
// histograms.
//
// Every hot path in the library (simulator round loop, flow solvers, thread
// pool, sweep engine) increments metrics registered here. Two properties make
// the layer safe to leave permanently enabled:
//
//   1. Determinism. Counters and histograms are purely additive over
//      thread-local shards, and addition of unsigned integers is commutative —
//      so as long as the *multiset* of increments is thread-count-invariant
//      (the repo's core contract), the merged totals are bit-identical at any
//      thread count. Metrics whose increment multiset inherently depends on
//      scheduling (steal counts, trace-ring drops) or on wall time are tagged
//      Stability::kScheduling / kWallClock so consumers (tests, baseline
//      tooling) can exclude them; everything else defaults to kStable and is
//      covered by the cross-thread-count determinism tests.
//   2. Cost. A counter increment is one relaxed fetch_add on a cache-line-
//      padded thread-local shard; there is no lock, no branch on an "enabled"
//      flag, and no allocation. Handles are resolved once through a
//      function-local static and are stable for the process lifetime.
//
// Naming convention: "module/name" (e.g. "flow/dinic_phases",
// "pool/executed_stolen"). Snapshots are ordered by name, so every export is
// deterministic as well.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace p2pvod::obs {

/// How a metric's value relates to the determinism contract.
enum class Stability : std::uint8_t {
  /// Thread-count-invariant: identical at 1/4/8 threads for a fixed seed.
  /// The default; the cross-thread determinism tests assert it.
  kStable,
  /// Depends on scheduling (steals, helping runs, ring drops). Real work
  /// accounting, but not comparable across thread counts.
  kScheduling,
  /// Derived from wall time; never comparable across runs.
  kWallClock,
};

/// Stable lowercase name ("stable" / "scheduling" / "wall-clock") used in
/// the JSON export.
[[nodiscard]] std::string_view stability_name(Stability stability);

/// Shards per metric. Threads hash onto shards round-robin; 16 slots keeps
/// contention negligible at any sane pool size while bounding the footprint
/// (one cache line per shard).
inline constexpr std::size_t kMetricShards = 16;

/// Index of the calling thread's shard (assigned round-robin on first use).
[[nodiscard]] std::size_t metric_shard_index() noexcept;

/// Monotonic additive metric. add() is wait-free (relaxed fetch_add on the
/// caller's shard); value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[metric_shard_index()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Stability stability() const noexcept { return stability_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, Stability stability)
      : name_(std::move(name)), stability_(stability) {}

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::string name_;
  Stability stability_;
};

/// Last-writer-wins instantaneous value (configured sizes, high-water marks
/// via record_max). Not sharded: sets are rare and order-dependent anyway.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

  /// Monotonic high-water update.
  void record_max(std::int64_t value) noexcept {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Stability stability() const noexcept { return stability_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, Stability stability)
      : name_(std::move(name)), stability_(stability) {}

  std::atomic<std::int64_t> value_{0};
  std::string name_;
  Stability stability_;
};

/// Fixed-bucket integer histogram. Observations are unsigned integers
/// (counts, lengths, depths) so the running sum merges deterministically —
/// no floating-point accumulation order to worry about. Bucket i counts
/// observations <= bounds[i]; one implicit overflow bucket catches the rest.
class Histogram {
 public:
  void observe(std::uint64_t value) noexcept {
    Shard& shard = shards_[metric_shard_index()];
    shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Merged per-bucket counts (bounds().size() + 1 entries, overflow last).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Stability stability() const noexcept { return stability_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, Stability stability,
            std::vector<std::uint64_t> bounds);

  [[nodiscard]] std::size_t bucket_of(std::uint64_t value) const noexcept {
    std::size_t low = 0;
    std::size_t high = bounds_.size();  // == overflow bucket
    while (low < high) {
      const std::size_t mid = low + (high - low) / 2;
      if (value <= bounds_[mid]) {
        high = mid;
      } else {
        low = mid + 1;
      }
    }
    return low;
  }

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::vector<std::uint64_t> bounds_;
  std::string name_;
  Stability stability_;
};

/// One metric's merged value at a point in time.
struct MetricValue {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  Stability stability = Stability::kStable;
  std::uint64_t count = 0;  ///< counter value, or histogram observation count
  std::int64_t gauge = 0;   ///< gauge value
  std::uint64_t sum = 0;    ///< histogram sum of observations
  std::vector<std::uint64_t> bounds;   ///< histogram bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< histogram counts (overflow last)

  bool operator==(const MetricValue&) const = default;
};

/// Name-ordered snapshot of every registered metric. Ordered map iteration
/// keeps exports deterministic.
struct MetricsSnapshot {
  std::map<std::string, MetricValue> values;

  /// Counters/histograms become deltas against `earlier` (absent-in-earlier
  /// metrics keep their full value); gauges keep their current value. The
  /// scenario runner uses this to attribute process-wide totals to one run.
  [[nodiscard]] MetricsSnapshot delta_since(
      const MetricsSnapshot& earlier) const;

  /// Subset with the given stability tag (determinism tests compare the
  /// kStable slice across thread counts).
  [[nodiscard]] MetricsSnapshot with_stability(Stability stability) const;

  /// The "metrics" block of BENCH_<id>.json: one object per metric, keyed by
  /// name, each carrying kind/stability and its value fields.
  [[nodiscard]] util::json::Value to_json() const;
};

/// Process-wide metric registry. Registration is idempotent by name;
/// re-registering a name as a different kind (or a histogram with different
/// bounds) throws std::logic_error. The global() instance is intentionally
/// leaked so metric handles stay valid through static destruction (the
/// global ThreadPool's workers may outlive ordinary statics).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name,
                                 Stability stability = Stability::kStable);
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             Stability stability = Stability::kStable);
  [[nodiscard]] Histogram& histogram(
      std::string_view name, std::vector<std::uint64_t> bounds,
      Stability stability = Stability::kStable);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Power-of-two bucket bounds {1, 2, 4, ..., 2^max_pow2} — the usual shape
/// for count/length distributions.
[[nodiscard]] std::vector<std::uint64_t> pow2_bounds(std::uint32_t max_pow2);

}  // namespace p2pvod::obs
