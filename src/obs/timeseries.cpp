#include "obs/timeseries.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace p2pvod::obs {

namespace {

struct SeriesState {
  std::atomic<bool> active{false};
  std::mutex mutex;  // guards everything below
  MetricsSnapshot last;
  std::vector<std::uint64_t> rounds;
  /// Name-keyed columns; a column appearing after the first tick is
  /// zero-backfilled to the current row count on first touch.
  std::map<std::string, std::vector<std::uint64_t>> columns;
};

SeriesState& state() {
  // Leaked for symmetry with the registry/trace state: ticks may arrive from
  // pool workers that outlive ordinary statics.
  static auto* instance = new SeriesState();
  return *instance;
}

}  // namespace

void RoundSeries::start() {
  SeriesState& s = state();
  const std::lock_guard lock(s.mutex);
  if (s.active.load(std::memory_order_relaxed)) return;
  s.last = MetricsRegistry::global().snapshot();
  s.rounds.clear();
  s.columns.clear();
  s.active.store(true, std::memory_order_release);
}

bool RoundSeries::active() noexcept {
  return state().active.load(std::memory_order_relaxed);
}

void RoundSeries::tick(std::uint64_t round) {
  SeriesState& s = state();
  const std::lock_guard lock(s.mutex);
  if (!s.active.load(std::memory_order_relaxed)) return;
  MetricsSnapshot now = MetricsRegistry::global().snapshot();
  const MetricsSnapshot delta = now.delta_since(s.last);
  const std::size_t row = s.rounds.size();
  for (const auto& [name, value] : delta.values) {
    if (value.kind != MetricValue::Kind::kCounter) continue;
    std::vector<std::uint64_t>& column = s.columns[name];
    column.resize(row, 0);  // zero-backfill a late-registered column
    column.push_back(value.count);
  }
  s.rounds.push_back(round);
  s.last = std::move(now);
}

RoundSeriesData RoundSeries::stop() {
  SeriesState& s = state();
  RoundSeriesData data;
  const std::lock_guard lock(s.mutex);
  if (!s.active.load(std::memory_order_relaxed)) return data;
  s.active.store(false, std::memory_order_release);
  data.rounds = std::move(s.rounds);
  data.columns.reserve(s.columns.size());
  data.values.reserve(s.columns.size());
  for (auto& [name, column] : s.columns) {
    column.resize(data.rounds.size(), 0);
    data.columns.push_back(name);
    data.values.push_back(std::move(column));
  }
  s.rounds.clear();
  s.columns.clear();
  s.last = MetricsSnapshot{};
  return data;
}

std::string RoundSeriesData::to_csv() const {
  std::string out = "round";
  for (const std::string& column : columns) {
    out += ',';
    out += column;
  }
  out += '\n';
  for (std::size_t row = 0; row < rounds.size(); ++row) {
    out += std::to_string(rounds[row]);
    for (const std::vector<std::uint64_t>& column : values) {
      out += ',';
      out += std::to_string(column[row]);
    }
    out += '\n';
  }
  return out;
}

util::json::Value RoundSeriesData::to_json() const {
  using util::json::Value;
  Value doc{Value::Object{}};
  doc.set("schema", "p2pvod-series-v1");
  Value::Array round_labels;
  round_labels.reserve(rounds.size());
  for (const std::uint64_t round : rounds) round_labels.push_back(round);
  doc.set("rounds", std::move(round_labels));
  Value series{Value::Object{}};
  for (std::size_t c = 0; c < columns.size(); ++c) {
    Value::Array deltas;
    deltas.reserve(values[c].size());
    for (const std::uint64_t value : values[c]) deltas.push_back(value);
    series.set(columns[c], std::move(deltas));
  }
  doc.set("series", std::move(series));
  return doc;
}

void RoundSeries::stop_to_files(const std::string& dir,
                                const std::string& id) {
  const RoundSeriesData data = stop();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  util::json::write_file(dir + "/SERIES_" + id + ".json", data.to_json());
  const std::string csv_path = dir + "/SERIES_" + id + ".csv";
  std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("RoundSeries: cannot open " + csv_path);
  out << data.to_csv();
  if (!out) throw std::runtime_error("RoundSeries: write failed: " + csv_path);
}

}  // namespace p2pvod::obs
