// Perf-trajectory history and the statistical wall-time regression gate.
//
// wall_seconds is diff-ignored in every BENCH baseline (machine classes
// vary), so until now speed had no gate at all. This layer makes wall time
// gateable without making it flaky: k repeated runs of each scenario are
// reduced to median + MAD (robust against a one-off scheduling hiccup) plus
// Welford mean/stddev (util::OnlineStats — the same accumulator the
// Monte-Carlo batch-mode ROADMAP item will stream trials through), and the
// gate compares medians with a noise band scaled by the *observed* MADs
// rather than a fixed percentage alone:
//
//   regression  <=>  cand.median > ref.median
//                       + max(abs_slack,
//                             rel_tol * ref.median,
//                             mad_factor * (ref.mad + cand.mad))
//
// A committed baselines/PERF_trajectory.json holds the history as an
// append-only list of points (label, scale, per-scenario/per-stage
// WallStats); the reference for a candidate is the most recent point at the
// same scale, so smoke runs (0.25) and nightly runs (1.0) gate against
// their own lineage. Everything here is deterministic given its input —
// no clock reads, no randomness — so running the gate twice on identical
// input is byte-identical; timestamps, when wanted, travel in the label.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace p2pvod::obs {

/// Robust + moment reduction of k repeated wall-time samples (seconds).
struct WallStats {
  std::size_t runs = 0;
  double median = 0.0;
  double mad = 0.0;  ///< median absolute deviation from the median
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static WallStats reduce(std::vector<double> samples);
  [[nodiscard]] util::json::Value to_json() const;
  [[nodiscard]] static WallStats from_json(const util::json::Value& value);
};

/// One scenario's reduced wall times: the whole run plus each named stage.
struct ScenarioPerf {
  WallStats total;
  std::map<std::string, WallStats> stages;
};

/// One gate-run's worth of measurements: every scenario measured at one
/// scale, under a human-readable label (e.g. "seed-2026-08-08", a CI run id).
struct TrajectoryPoint {
  std::string label;
  double scale = 1.0;
  std::map<std::string, ScenarioPerf> scenarios;
};

/// Append-only history of trajectory points ("p2pvod-perf-trajectory-v1").
struct Trajectory {
  std::vector<TrajectoryPoint> points;

  [[nodiscard]] util::json::Value to_json() const;
  [[nodiscard]] static Trajectory from_json(const util::json::Value& value);

  /// Most recent point recorded at `scale` (exact match), or nullptr — a
  /// candidate at a never-gated scale passes vacuously.
  [[nodiscard]] const TrajectoryPoint* reference(double scale) const noexcept;
};

struct GateOptions {
  double rel_tol = 0.25;    ///< fraction of the reference median
  double mad_factor = 4.0;  ///< multiples of (ref.mad + cand.mad)
  double abs_slack = 0.05;  ///< seconds; floors the band for tiny stages
};

/// One gated comparison. stage == "" means the scenario total.
struct GateFinding {
  std::string scenario;
  std::string stage;
  double reference_median = 0.0;
  double candidate_median = 0.0;
  double limit = 0.0;  ///< reference_median + noise band
  bool regression = false;
};

/// Compare `candidate` against the most recent same-scale point of
/// `history`. Returns one finding per (scenario, total-or-stage) present in
/// both sides, ordered by (scenario, stage); scenarios or stages new to the
/// candidate produce no finding. Empty when history has no same-scale point.
[[nodiscard]] std::vector<GateFinding> gate_compare(
    const TrajectoryPoint& candidate, const Trajectory& history,
    const GateOptions& options = {});

/// Reduce k repeated BENCH_<id>.json documents (any mix of scenarios; runs
/// of the same scenario are grouped by their "id") into one trajectory
/// point. Throws std::runtime_error on malformed documents or mixed scales —
/// a trajectory point is only meaningful at a single scale.
[[nodiscard]] TrajectoryPoint reduce_bench_runs(
    const std::vector<util::json::Value>& documents, std::string label);

}  // namespace p2pvod::obs
