#include "obs/clock.hpp"

#include <chrono>

namespace p2pvod::obs {

std::uint64_t monotonic_ns() noexcept {
  // The one legal clock read (lint wall-clock allowlist: src/obs/clock.*).
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

}  // namespace p2pvod::obs
