// The repo's single wall-clock entry point.
//
// The determinism linter bans raw std::chrono clock reads everywhere except
// this TU (see lint::Config::repo_default): every timestamp in the codebase —
// per-point sweep timing, per-stage scenario timing, trace-event spans —
// flows through monotonic_ns(), so "where can wall time leak from?" has
// exactly one answer. Wall time is for *reporting only*; nothing here may
// feed simulation state, seeds, or metric values tagged Stability::kStable.
#pragma once

#include <cstdint>

namespace p2pvod::obs {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch. The only
/// function in the repo allowed to read a clock.
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// Stopwatch over monotonic_ns(); replaces ad-hoc steady_clock arithmetic at
/// the timing call sites (sweep points, scenario stages).
class WallTimer {
 public:
  WallTimer() noexcept : start_(monotonic_ns()) {}

  /// Seconds elapsed since construction (or the last reset()).
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(monotonic_ns() - start_) * 1e-9;
  }

  void reset() noexcept { start_ = monotonic_ns(); }

 private:
  std::uint64_t start_;
};

}  // namespace p2pvod::obs
