// Per-round metric time-series: end-of-run totals become plottable curves.
//
// RoundSeries is a process-wide recording window in the style of
// TraceSession: the scenario runner opens one per scenario, the simulator
// calls RoundSeries::tick(round) at the end of each round, and each tick
// snapshots the MetricsRegistry and appends the *delta* of every registered
// counter since the previous tick to a columnar buffer. Threshold crossings,
// churn transients, and sparse-path repair bursts show up as per-round
// curves (served, stalled, matcher augmentations, rows_built, cross-zone
// chunks, ...) instead of being flattened into one total.
//
// Cost model: with no active series, tick() is one relaxed atomic load.
// While recording, each tick takes a registry snapshot under the series
// mutex — O(registered metrics) per simulated round, which is noise next to
// a matching round but not free; the runner only enables it on request
// (--series DIR / P2PVOD_SERIES).
//
// Concurrency caveat: the registry is process-wide, so when several
// simulations run concurrently (sweep trials on the pool) their increments
// land in whichever tick is open — per-round attribution is only exact for
// a single simulation at a time. Columns are name-ordered and rows arrive
// in tick order, so a given run's export is deterministic; the *values* mix
// trial interleavings, which is why series documents are artifacts (like
// traces), never baselines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace p2pvod::obs {

/// Columnar per-round counter-delta table. values[c][r] is the increment of
/// counter columns[c] between ticks r-1 and r (tick 0 counts from start()).
struct RoundSeriesData {
  std::vector<std::uint64_t> rounds;        ///< tick labels, in tick order
  std::vector<std::string> columns;         ///< counter names, name-ordered
  std::vector<std::vector<std::uint64_t>> values;  ///< [column][row]

  [[nodiscard]] bool empty() const noexcept { return rounds.empty(); }

  /// "round,<col>,..." header plus one row per tick.
  [[nodiscard]] std::string to_csv() const;

  /// The "p2pvod-series-v1" document: rounds array + {name: [deltas...]}.
  [[nodiscard]] util::json::Value to_json() const;
};

/// Process-wide per-round recorder. At most one series is active at a time;
/// start() while active is a no-op.
class RoundSeries {
 public:
  /// Begin recording: snapshot the registry as the delta base and clear any
  /// buffered rows from an earlier series.
  static void start();

  /// True while a series is recording (one relaxed load).
  [[nodiscard]] static bool active() noexcept;

  /// Append one row: every registered counter's delta since the previous
  /// tick, labelled `round`. No-op when no series is active. Thread-safe
  /// (ticks serialize on the series mutex), though concurrent simulations
  /// interleave attribution — see the header comment.
  static void tick(std::uint64_t round);

  /// Stop recording and return the buffered table (empty when no series was
  /// active). Columns registered after the first tick are zero-backfilled.
  static RoundSeriesData stop();

  /// Stop recording and write <dir>/SERIES_<id>.csv and .json, creating
  /// `dir` as needed. Throws std::runtime_error on I/O failure.
  static void stop_to_files(const std::string& dir, const std::string& id);
};

}  // namespace p2pvod::obs
