#include "obs/metrics.hpp"

#include <stdexcept>
#include <utility>

namespace p2pvod::obs {

namespace {

std::atomic<std::size_t> g_next_shard{0};

}  // namespace

std::string_view stability_name(Stability stability) {
  switch (stability) {
    case Stability::kStable:
      return "stable";
    case Stability::kScheduling:
      return "scheduling";
    case Stability::kWallClock:
      return "wall-clock";
  }
  return "unknown";
}

std::size_t metric_shard_index() noexcept {
  thread_local const std::size_t index =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

Histogram::Histogram(std::string name, Stability stability,
                     std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), name_(std::move(name)),
      stability_(stability) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: empty bucket bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
  }
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
      shard.buckets[b].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < counts.size(); ++b)
      counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
      total += shard.buckets[b].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

MetricsRegistry& MetricsRegistry::global() {
  // Deliberately leaked: handles held in function-local statics all over the
  // library must stay valid until the last thread exits.
  static auto* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name, Stability stability) {
  const std::lock_guard lock(mutex_);
  std::string key(name);
  if (gauges_.count(key) != 0 || histograms_.count(key) != 0)
    throw std::logic_error("MetricsRegistry: '" + key +
                           "' already registered as another kind");
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(key, std::unique_ptr<Counter>(
                               new Counter(key, stability)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Stability stability) {
  const std::lock_guard lock(mutex_);
  std::string key(name);
  if (counters_.count(key) != 0 || histograms_.count(key) != 0)
    throw std::logic_error("MetricsRegistry: '" + key +
                           "' already registered as another kind");
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(key, std::unique_ptr<Gauge>(new Gauge(key, stability)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds,
                                      Stability stability) {
  const std::lock_guard lock(mutex_);
  std::string key(name);
  if (counters_.count(key) != 0 || gauges_.count(key) != 0)
    throw std::logic_error("MetricsRegistry: '" + key +
                           "' already registered as another kind");
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, std::unique_ptr<Histogram>(new Histogram(
                               key, stability, std::move(bounds))))
             .first;
  } else if (it->second->bounds() != bounds) {
    throw std::logic_error("MetricsRegistry: '" + key +
                           "' re-registered with different bucket bounds");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    MetricValue value;
    value.kind = MetricValue::Kind::kCounter;
    value.stability = counter->stability();
    value.count = counter->value();
    out.values.emplace(name, std::move(value));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue value;
    value.kind = MetricValue::Kind::kGauge;
    value.stability = gauge->stability();
    value.gauge = gauge->value();
    out.values.emplace(name, std::move(value));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricValue value;
    value.kind = MetricValue::Kind::kHistogram;
    value.stability = histogram->stability();
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.bounds = histogram->bounds();
    value.buckets = histogram->bucket_counts();
    out.values.emplace(name, std::move(value));
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : values) {
    MetricValue delta = value;
    const auto it = earlier.values.find(name);
    if (it != earlier.values.end() && it->second.kind == value.kind) {
      const MetricValue& before = it->second;
      switch (value.kind) {
        case MetricValue::Kind::kCounter:
          delta.count = value.count - before.count;
          break;
        case MetricValue::Kind::kGauge:
          break;  // instantaneous: keep the current reading
        case MetricValue::Kind::kHistogram:
          delta.count = value.count - before.count;
          delta.sum = value.sum - before.sum;
          for (std::size_t b = 0;
               b < delta.buckets.size() && b < before.buckets.size(); ++b)
            delta.buckets[b] -= before.buckets[b];
          break;
      }
    }
    out.values.emplace(name, std::move(delta));
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::with_stability(Stability stability) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : values) {
    if (value.stability == stability) out.values.emplace(name, value);
  }
  return out;
}

util::json::Value MetricsSnapshot::to_json() const {
  using util::json::Value;
  Value doc{Value::Object{}};
  for (const auto& [name, value] : values) {
    Value entry{Value::Object{}};
    entry.set("stability", std::string(stability_name(value.stability)));
    switch (value.kind) {
      case MetricValue::Kind::kCounter:
        entry.set("kind", "counter");
        entry.set("value", value.count);
        break;
      case MetricValue::Kind::kGauge:
        entry.set("kind", "gauge");
        entry.set("value", value.gauge);
        break;
      case MetricValue::Kind::kHistogram: {
        entry.set("kind", "histogram");
        entry.set("count", value.count);
        entry.set("sum", value.sum);
        Value::Array bounds;
        for (const std::uint64_t bound : value.bounds)
          bounds.emplace_back(bound);
        entry.set("bounds", std::move(bounds));
        Value::Array buckets;
        for (const std::uint64_t bucket : value.buckets)
          buckets.emplace_back(bucket);
        entry.set("buckets", std::move(buckets));
        break;
      }
    }
    doc.set(name, std::move(entry));
  }
  return doc;
}

std::vector<std::uint64_t> pow2_bounds(std::uint32_t max_pow2) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(max_pow2 + 1);
  for (std::uint32_t p = 0; p <= max_pow2; ++p)
    bounds.push_back(std::uint64_t{1} << p);
  return bounds;
}

}  // namespace p2pvod::obs
