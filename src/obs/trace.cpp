#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace p2pvod::obs {

namespace {

/// Per-thread event ring. Only the owning thread appends; stop() copies the
/// contents out. A per-buffer mutex serializes the two — uncontended in the
/// hot path (the owner re-locks its own free mutex), and it makes a stop()
/// racing a straggler worker well-defined instead of a data race.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // ring storage, capacity fixed per session
  std::size_t capacity = 0;        // session ring capacity (reserve() may
                                   // over-allocate and never shrinks)
  std::size_t next = 0;            // ring write cursor
  bool wrapped = false;
  std::uint64_t epoch = 0;  // session this buffer was last reset for
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> active{false};
  std::atomic<std::uint64_t> epoch{0};  // bumped by each start()
  std::mutex mutex;  // guards everything below
  std::vector<ThreadBuffer*> buffers;  // every buffer ever registered
  std::size_t ring_capacity = 1 << 14;
  std::uint32_t next_tid = 0;
};

TraceState& state() {
  // Leaked: pool worker threads may touch their buffers during shutdown.
  static auto* instance = new TraceState();
  return *instance;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (t_buffer == nullptr) {
    // Leaked per thread: a worker's buffer must survive past the session
    // that created it (the pointer lives in the global registry).
    t_buffer = new ThreadBuffer();
    TraceState& s = state();
    const std::lock_guard lock(s.mutex);
    t_buffer->tid = s.next_tid++;
    s.buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

Counter& dropped_counter() {
  static Counter& counter = MetricsRegistry::global().counter(
      "obs/trace_dropped_events", Stability::kScheduling);
  return counter;
}

void record(TraceEvent event) {
  TraceState& s = state();
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard lock(buffer.mutex);
  // A buffer first touched (or left over) from another session resets lazily.
  if (buffer.epoch != s.epoch.load(std::memory_order_acquire)) {
    std::uint64_t epoch;
    std::size_t capacity;
    {
      const std::lock_guard state_lock(s.mutex);
      epoch = s.epoch.load(std::memory_order_relaxed);
      capacity = s.ring_capacity;
    }
    buffer.epoch = epoch;
    buffer.capacity = capacity;
    buffer.events.clear();
    buffer.events.reserve(capacity);
    buffer.next = 0;
    buffer.wrapped = false;
  }
  event.tid = buffer.tid;
  if (buffer.events.size() < buffer.capacity) {
    buffer.events.push_back(std::move(event));
  } else if (!buffer.events.empty()) {
    buffer.events[buffer.next] = std::move(event);
    buffer.next = (buffer.next + 1) % buffer.events.size();
    buffer.wrapped = true;
    dropped_counter().add();
  }
}

}  // namespace

void TraceSession::start(Options options) {
  TraceState& s = state();
  const std::lock_guard lock(s.mutex);
  if (s.active.load(std::memory_order_relaxed)) return;
  s.ring_capacity = std::max<std::size_t>(1, options.ring_capacity);
  s.epoch.fetch_add(1, std::memory_order_release);
  s.active.store(true, std::memory_order_release);
}

bool TraceSession::active() noexcept {
  return state().active.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceSession::stop() {
  TraceState& s = state();
  std::vector<TraceEvent> merged;
  {
    const std::lock_guard lock(s.mutex);
    if (!s.active.load(std::memory_order_relaxed)) return merged;
    s.active.store(false, std::memory_order_release);
    const std::uint64_t epoch = s.epoch.load(std::memory_order_relaxed);
    for (ThreadBuffer* buffer : s.buffers) {
      const std::lock_guard buffer_lock(buffer->mutex);
      if (buffer->epoch != epoch) continue;  // never wrote this session
      if (buffer->wrapped) {
        // Ring order: oldest entries start at the write cursor.
        merged.insert(merged.end(), buffer->events.begin() + buffer->next,
                      buffer->events.end());
        merged.insert(merged.end(), buffer->events.begin(),
                      buffer->events.begin() + buffer->next);
      } else {
        merged.insert(merged.end(), buffer->events.begin(),
                      buffer->events.end());
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.tid < b.tid;
            });
  return merged;
}

std::uint64_t TraceSession::dropped_events() noexcept {
  return dropped_counter().value();
}

std::string TraceSession::to_chrome_json(
    const std::vector<TraceEvent>& events) {
  using util::json::Value;
  std::uint64_t epoch_ns = 0;
  if (!events.empty()) epoch_ns = events.front().ts_ns;

  Value::Array trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    Value entry{Value::Object{}};
    entry.set("name", event.name);
    // "cat" is the module prefix of the "module/name" convention; Perfetto
    // uses it for filtering.
    const auto slash = event.name.find('/');
    entry.set("cat", slash == std::string::npos
                         ? event.name
                         : event.name.substr(0, slash));
    entry.set("ph", std::string(1, event.phase));
    entry.set("ts", static_cast<double>(event.ts_ns - epoch_ns) / 1000.0);
    if (event.phase == 'X')
      entry.set("dur", static_cast<double>(event.dur_ns) / 1000.0);
    entry.set("pid", 1);
    entry.set("tid", static_cast<std::uint64_t>(event.tid));
    trace_events.push_back(std::move(entry));
  }

  Value doc{Value::Object{}};
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", "ms");
  return doc.dump(-1);
}

void TraceSession::stop_to_file(const std::string& path) {
  write_file(path, stop());
}

void TraceSession::write_file(const std::string& path,
                              const std::vector<TraceEvent>& events) {
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("TraceSession: cannot open " + path);
  out << to_chrome_json(events) << '\n';
  if (!out) throw std::runtime_error("TraceSession: write failed: " + path);
}

namespace detail {

void record_complete(const char* name, std::uint64_t start_ns,
                     std::uint64_t dur_ns) {
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.ts_ns = start_ns;
  event.dur_ns = dur_ns;
  record(std::move(event));
}

void record_complete(std::string name, std::uint64_t start_ns,
                     std::uint64_t dur_ns) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'X';
  event.ts_ns = start_ns;
  event.dur_ns = dur_ns;
  record(std::move(event));
}

void record_instant(const char* name) {
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_ns = monotonic_ns();
  record(std::move(event));
}

}  // namespace detail

}  // namespace p2pvod::obs
