#include "model/params.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2pvod::model {

std::uint64_t SystemParams::slot_count() const noexcept {
  return static_cast<std::uint64_t>(slots_per_box()) * n;
}

std::uint32_t SystemParams::slots_per_box() const noexcept {
  return static_cast<std::uint32_t>(std::llround(d * c));
}

std::uint32_t SystemParams::upload_slots() const noexcept {
  const double slots = std::floor(u * c + 1e-9);
  return slots <= 0.0 ? 0u : static_cast<std::uint32_t>(slots);
}

double SystemParams::u_prime() const noexcept {
  return static_cast<double>(upload_slots()) / c;
}

void SystemParams::validate() const {
  auto fail = [](const std::string& message) {
    throw std::invalid_argument("SystemParams: " + message);
  };
  if (n == 0) fail("n must be positive");
  if (m == 0) fail("m must be positive");
  if (c == 0) fail("c must be positive");
  if (k == 0) fail("k must be positive");
  if (u < 0.0) fail("u must be non-negative");
  if (d <= 0.0) fail("d must be positive");
  if (mu < 1.0) fail("mu must be at least 1");
  if (video_duration <= 0) fail("video_duration must be positive");
  if (replica_count() > slot_count()) {
    std::ostringstream out;
    out << "replicas (k*m*c = " << replica_count()
        << ") exceed storage slots (d*n*c = " << slot_count() << ")";
    fail(out.str());
  }
  // A box must be able to hold at least the stripes of one video in its
  // catalog share for the model to make sense; d >= replicas per box / c.
  if (slots_per_box() == 0) fail("d*c rounds to zero slots per box");
}

std::string SystemParams::describe() const {
  std::ostringstream out;
  out << "(n=" << n << ", u=" << u << ", d=" << d << ") m=" << m
      << " c=" << c << " k=" << k << " mu=" << mu << " T=" << video_duration
      << " seed=" << seed;
  return out.str();
}

std::uint32_t SystemParams::catalog_from_replication(std::uint32_t n, double d,
                                                     std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("catalog_from_replication: k == 0");
  const double m = d * static_cast<double>(n) / static_cast<double>(k);
  return m < 1.0 ? 1u : static_cast<std::uint32_t>(m);
}

}  // namespace p2pvod::model
