#include "model/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p2pvod::model {

CapacityProfile::CapacityProfile(std::vector<double> upload,
                                 std::vector<double> storage)
    : upload_(std::move(upload)), storage_(std::move(storage)) {
  if (upload_.size() != storage_.size()) {
    throw std::invalid_argument(
        "CapacityProfile: upload/storage size mismatch");
  }
  for (std::size_t b = 0; b < upload_.size(); ++b) {
    if (upload_[b] < 0.0)
      throw std::invalid_argument("CapacityProfile: negative upload");
    if (storage_[b] < 0.0)
      throw std::invalid_argument("CapacityProfile: negative storage");
  }
}

CapacityProfile CapacityProfile::homogeneous(std::uint32_t n, double u,
                                             double d) {
  return CapacityProfile(std::vector<double>(n, u), std::vector<double>(n, d));
}

CapacityProfile CapacityProfile::two_class(std::uint32_t n,
                                           std::uint32_t poor_count,
                                           double u_poor, double d_poor,
                                           double u_rich, double d_rich) {
  if (poor_count > n)
    throw std::invalid_argument("two_class: poor_count > n");
  std::vector<double> upload(n, u_rich);
  std::vector<double> storage(n, d_rich);
  // Poor boxes take the low indices; allocation and workloads never depend on
  // box order, and deterministic placement keeps tests simple.
  for (std::uint32_t b = 0; b < poor_count; ++b) {
    upload[b] = u_poor;
    storage[b] = d_poor;
  }
  return CapacityProfile(std::move(upload), std::move(storage));
}

CapacityProfile CapacityProfile::proportional(std::uint32_t n, double u_lo,
                                              double u_hi,
                                              double storage_ratio,
                                              util::Rng& rng) {
  if (u_lo < 0.0 || u_hi < u_lo)
    throw std::invalid_argument("proportional: bad upload range");
  std::vector<double> upload(n);
  std::vector<double> storage(n);
  for (std::uint32_t b = 0; b < n; ++b) {
    upload[b] = u_lo + (u_hi - u_lo) * rng.next_double();
    storage[b] = storage_ratio * upload[b];
  }
  return CapacityProfile(std::move(upload), std::move(storage));
}

CapacityProfile CapacityProfile::server_plus_clients(std::uint32_t n,
                                                     double server_upload,
                                                     double server_storage,
                                                     double client_upload,
                                                     double client_storage) {
  if (n == 0) throw std::invalid_argument("server_plus_clients: n == 0");
  std::vector<double> upload(n, client_upload);
  std::vector<double> storage(n, client_storage);
  upload[0] = server_upload;
  storage[0] = server_storage;
  return CapacityProfile(std::move(upload), std::move(storage));
}

double CapacityProfile::average_upload() const noexcept {
  if (upload_.empty()) return 0.0;
  return std::accumulate(upload_.begin(), upload_.end(), 0.0) /
         static_cast<double>(upload_.size());
}

double CapacityProfile::average_storage() const noexcept {
  if (storage_.empty()) return 0.0;
  return std::accumulate(storage_.begin(), storage_.end(), 0.0) /
         static_cast<double>(storage_.size());
}

double CapacityProfile::max_upload() const noexcept {
  if (upload_.empty()) return 0.0;
  return *std::max_element(upload_.begin(), upload_.end());
}

double CapacityProfile::max_storage() const noexcept {
  if (storage_.empty()) return 0.0;
  return *std::max_element(storage_.begin(), storage_.end());
}

double CapacityProfile::min_upload() const noexcept {
  if (upload_.empty()) return 0.0;
  return *std::min_element(upload_.begin(), upload_.end());
}

std::uint32_t CapacityProfile::upload_slots(BoxId b, std::uint32_t c) const {
  const double slots = std::floor(upload_.at(b) * c + 1e-9);
  return slots <= 0.0 ? 0u : static_cast<std::uint32_t>(slots);
}

std::uint32_t CapacityProfile::storage_slots(BoxId b, std::uint32_t c) const {
  const long long slots = std::llround(storage_.at(b) * c);
  return slots <= 0 ? 0u : static_cast<std::uint32_t>(slots);
}

std::uint64_t CapacityProfile::total_storage_slots(std::uint32_t c) const {
  std::uint64_t total = 0;
  for (BoxId b = 0; b < size(); ++b) total += storage_slots(b, c);
  return total;
}

bool CapacityProfile::is_homogeneous(double tol) const noexcept {
  if (upload_.empty()) return true;
  for (std::size_t b = 1; b < upload_.size(); ++b) {
    if (std::abs(upload_[b] - upload_[0]) > tol) return false;
    if (std::abs(storage_[b] - storage_[0]) > tol) return false;
  }
  return true;
}

bool CapacityProfile::is_proportional(double tol) const noexcept {
  if (upload_.empty()) return true;
  double ratio = 0.0;
  bool have_ratio = false;
  for (std::size_t b = 0; b < upload_.size(); ++b) {
    if (storage_[b] == 0.0) return upload_[b] == 0.0;
    const double r = upload_[b] / storage_[b];
    if (!have_ratio) {
      ratio = r;
      have_ratio = true;
    } else if (std::abs(r - ratio) > tol) {
      return false;
    }
  }
  return true;
}

double CapacityProfile::upload_deficit(double u_star) const noexcept {
  double deficit = 0.0;
  for (const double ub : upload_) {
    if (ub < u_star) deficit += u_star - ub;
  }
  return deficit;
}

std::vector<BoxId> CapacityProfile::poor_boxes(double u_star) const {
  std::vector<BoxId> out;
  for (BoxId b = 0; b < size(); ++b) {
    if (upload_[b] < u_star) out.push_back(b);
  }
  return out;
}

std::vector<BoxId> CapacityProfile::rich_boxes(double u_star) const {
  std::vector<BoxId> out;
  for (BoxId b = 0; b < size(); ++b) {
    if (upload_[b] >= u_star) out.push_back(b);
  }
  return out;
}

bool CapacityProfile::satisfies_deficit_condition() const noexcept {
  if (upload_.empty()) return false;
  return average_upload() >
         1.0 + upload_deficit(1.0) / static_cast<double>(size());
}

CapacityProfile CapacityProfile::with_storage_ratio(double ratio) const {
  if (ratio <= 0.0)
    throw std::invalid_argument("with_storage_ratio: ratio must be positive");
  std::vector<double> storage(upload_.size());
  for (std::size_t b = 0; b < upload_.size(); ++b)
    storage[b] = ratio * upload_[b];
  return CapacityProfile(upload_, std::move(storage));
}

std::string CapacityProfile::describe() const {
  std::ostringstream out;
  out << "n=" << size() << " u_avg=" << average_upload()
      << " d_avg=" << average_storage() << " u_min=" << min_upload()
      << " u_max=" << max_upload() << " Delta(1)=" << upload_deficit(1.0);
  return out.str();
}

}  // namespace p2pvod::model
