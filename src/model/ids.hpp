// Strongly-typed identifiers for the domain objects of the paper's model:
// boxes (peers), videos, stripes, rounds.
//
// Stripe identifiers are flattened as video * c + stripe_index so that all
// per-stripe state lives in contiguous vectors.
#pragma once

#include <cstdint>
#include <functional>

namespace p2pvod::model {

using BoxId = std::uint32_t;      ///< index of a box in [0, n)
using VideoId = std::uint32_t;    ///< index of a video in [0, m)
using StripeId = std::uint32_t;   ///< flattened stripe index in [0, m*c)
using Round = std::int64_t;       ///< discrete time round (may be negative in tests)

inline constexpr BoxId kInvalidBox = static_cast<BoxId>(-1);
inline constexpr VideoId kInvalidVideo = static_cast<VideoId>(-1);
inline constexpr StripeId kInvalidStripe = static_cast<StripeId>(-1);

/// (video, stripe index within video) pair; convertible to/from StripeId via
/// the catalog's stripe count c.
struct StripeRef {
  VideoId video = kInvalidVideo;
  std::uint32_t index = 0;  ///< in [0, c)

  friend constexpr bool operator==(const StripeRef&, const StripeRef&) = default;
};

/// A stripe request as in §2.2: stripe s requested by box b at round t.
/// The request remains active for the duration of the video; at current round
/// t_now it needs the chunk at position (t_now - issued).
struct RequestKey {
  StripeId stripe = kInvalidStripe;
  Round issued = 0;
  BoxId box = kInvalidBox;

  friend constexpr bool operator==(const RequestKey&, const RequestKey&) = default;
};

}  // namespace p2pvod::model

template <>
struct std::hash<p2pvod::model::StripeRef> {
  std::size_t operator()(const p2pvod::model::StripeRef& s) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(s.video) << 32) | s.index);
  }
};

template <>
struct std::hash<p2pvod::model::RequestKey> {
  std::size_t operator()(const p2pvod::model::RequestKey& r) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(r.stripe) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(r.issued) + 0x7f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(r.box) + 0x632be59bULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};
