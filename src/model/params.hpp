// SystemParams: the (n, u, d)-video system of the paper plus the protocol
// parameters (c stripes, k replicas, swarm growth bound µ, video duration T).
//
// This struct is the single source of truth threaded through allocation,
// simulation and analysis; validate() enforces the model's well-formedness
// conditions (Table 1 of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "model/ids.hpp"

namespace p2pvod::model {

struct SystemParams {
  // --- (n, u, d)-video system ---
  std::uint32_t n = 0;      ///< number of boxes
  double u = 1.0;           ///< average upload capacity (video streams)
  double d = 1.0;           ///< average storage capacity (videos)

  // --- catalog / striping ---
  std::uint32_t m = 0;      ///< catalog size (number of distinct videos)
  std::uint32_t c = 1;      ///< stripes per video, each of rate 1/c
  std::uint32_t k = 1;      ///< replicas per stripe (k ≈ d n / m)

  // --- dynamics ---
  double mu = 1.0;          ///< maximal swarm growth µ ≥ 1 per round
  Round video_duration = 32;  ///< T, in rounds (all videos same duration)

  std::uint64_t seed = 0x5eed;  ///< base seed for all randomized components

  /// Total stripe count m*c.
  [[nodiscard]] std::uint32_t stripe_count() const noexcept { return m * c; }
  /// Total replica count k*m*c.
  [[nodiscard]] std::uint64_t replica_count() const noexcept {
    return static_cast<std::uint64_t>(k) * m * c;
  }
  /// Total storage slots d*n*c (rounded to integer slots).
  [[nodiscard]] std::uint64_t slot_count() const noexcept;
  /// Per-box slots for a homogeneous system: d*c.
  [[nodiscard]] std::uint32_t slots_per_box() const noexcept;
  /// Effective integral per-box upload in stripes/round: ⌊u*c⌋ (homogeneous).
  [[nodiscard]] std::uint32_t upload_slots() const noexcept;
  /// Effective upload capacity u' = ⌊u c⌋ / c (§3).
  [[nodiscard]] double u_prime() const noexcept;
  /// Minimal chunk size ℓ = 1/c.
  [[nodiscard]] double min_chunk() const noexcept { return 1.0 / c; }

  /// Flatten / unflatten stripe ids.
  [[nodiscard]] StripeId stripe_id(VideoId v, std::uint32_t idx) const noexcept {
    return v * c + idx;
  }
  [[nodiscard]] StripeRef stripe_ref(StripeId s) const noexcept {
    return StripeRef{s / c, s % c};
  }

  /// Throws std::invalid_argument describing the first violated constraint.
  void validate() const;

  /// One-line human-readable summary.
  [[nodiscard]] std::string describe() const;

  /// Catalog size from storage identity m = d*n/k (rounded down, ≥ 1).
  [[nodiscard]] static std::uint32_t catalog_from_replication(
      std::uint32_t n, double d, std::uint32_t k);
};

}  // namespace p2pvod::model
