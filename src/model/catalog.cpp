#include "model/catalog.hpp"

#include <sstream>
#include <stdexcept>

namespace p2pvod::model {

Catalog::Catalog(std::uint32_t videos, std::uint32_t stripes_per_video,
                 Round duration)
    : videos_(videos), c_(stripes_per_video), duration_(duration) {
  if (videos_ == 0) throw std::invalid_argument("Catalog: zero videos");
  if (c_ == 0) throw std::invalid_argument("Catalog: zero stripes per video");
  if (duration_ <= 0) throw std::invalid_argument("Catalog: duration <= 0");
}

StripeId Catalog::stripe_id(VideoId v, std::uint32_t index) const {
  if (v >= videos_) throw std::out_of_range("Catalog::stripe_id: bad video");
  if (index >= c_) throw std::out_of_range("Catalog::stripe_id: bad index");
  return v * c_ + index;
}

StripeRef Catalog::stripe_ref(StripeId s) const {
  if (!contains(s)) throw std::out_of_range("Catalog::stripe_ref: bad stripe");
  return StripeRef{s / c_, s % c_};
}

VideoId Catalog::video_of(StripeId s) const {
  if (!contains(s)) throw std::out_of_range("Catalog::video_of: bad stripe");
  return s / c_;
}

std::uint32_t Catalog::index_of(StripeId s) const {
  if (!contains(s)) throw std::out_of_range("Catalog::index_of: bad stripe");
  return s % c_;
}

std::vector<StripeId> Catalog::stripes_of(VideoId v) const {
  if (v >= videos_) throw std::out_of_range("Catalog::stripes_of: bad video");
  std::vector<StripeId> out(c_);
  for (std::uint32_t i = 0; i < c_; ++i) out[i] = v * c_ + i;
  return out;
}

std::string Catalog::describe() const {
  std::ostringstream out;
  out << "catalog m=" << videos_ << " c=" << c_ << " T=" << duration_
      << " (stripes=" << stripe_count() << ")";
  return out.str();
}

}  // namespace p2pvod::model
