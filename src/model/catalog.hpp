// Catalog: the set of m videos, each encoded into c equal-rate stripes.
//
// The paper's simple encoding splits the video file into packets and assigns
// packet p to stripe (p mod c); a viewer downloads all c stripes in parallel,
// each at rate 1/c. This class owns the video <-> stripe id algebra and the
// per-video metadata the simulator needs (duration, in rounds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"

namespace p2pvod::model {

class Catalog {
 public:
  /// All videos share duration T (rounds) and stripe count c, as in §1.1.
  Catalog(std::uint32_t videos, std::uint32_t stripes_per_video,
          Round duration);

  [[nodiscard]] std::uint32_t video_count() const noexcept { return videos_; }
  [[nodiscard]] std::uint32_t stripes_per_video() const noexcept { return c_; }
  [[nodiscard]] std::uint32_t stripe_count() const noexcept {
    return videos_ * c_;
  }
  [[nodiscard]] Round duration() const noexcept { return duration_; }

  [[nodiscard]] StripeId stripe_id(VideoId v, std::uint32_t index) const;
  [[nodiscard]] StripeRef stripe_ref(StripeId s) const;
  [[nodiscard]] VideoId video_of(StripeId s) const;
  [[nodiscard]] std::uint32_t index_of(StripeId s) const;

  /// All c stripe ids of a video, in index order.
  [[nodiscard]] std::vector<StripeId> stripes_of(VideoId v) const;

  /// True when the id refers to a stripe of this catalog.
  [[nodiscard]] bool contains(StripeId s) const noexcept {
    return s < stripe_count();
  }
  [[nodiscard]] bool contains_video(VideoId v) const noexcept {
    return v < videos_;
  }

  /// Chunk position arithmetic: a stripe download that began at round t0 needs
  /// chunk (now - t0); the download completes when that position reaches
  /// duration(). Positions are 0-based.
  [[nodiscard]] bool position_in_range(Round position) const noexcept {
    return position >= 0 && position < duration_;
  }

  [[nodiscard]] std::string describe() const;

 private:
  std::uint32_t videos_;
  std::uint32_t c_;
  Round duration_;
};

}  // namespace p2pvod::model
