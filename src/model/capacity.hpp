// Per-box capacity profiles: upload u_b (in video streams) and storage d_b
// (in videos). Homogeneous systems have constant vectors; heterogeneous
// builders produce the mixes studied in §4 of the paper.
//
// Also hosts the quantities the heterogeneous theory is phrased in:
//   * upload deficit Δ(u*) = Σ_{b : u_b < u*} (u* − u_b)
//   * rich/poor classification w.r.t. a threshold u*
//   * proportional heterogeneity check (u_b/d_b constant)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "util/rng.hpp"

namespace p2pvod::model {

class CapacityProfile {
 public:
  CapacityProfile() = default;
  CapacityProfile(std::vector<double> upload, std::vector<double> storage);

  /// All boxes identical: the homogeneous (n, u, d)-video system.
  [[nodiscard]] static CapacityProfile homogeneous(std::uint32_t n, double u,
                                                   double d);

  /// Two-class mix: `poor_count` boxes with (u_poor, d_poor), the rest rich.
  [[nodiscard]] static CapacityProfile two_class(std::uint32_t n,
                                                 std::uint32_t poor_count,
                                                 double u_poor, double d_poor,
                                                 double u_rich, double d_rich);

  /// Proportionally heterogeneous: draw u_b uniform in [u_lo, u_hi] and set
  /// d_b = u_b * (d/u) so that u_b/d_b is constant (§1.1).
  [[nodiscard]] static CapacityProfile proportional(std::uint32_t n,
                                                    double u_lo, double u_hi,
                                                    double storage_ratio,
                                                    util::Rng& rng);

  /// Peer-assisted-server shape: one "server" box with huge capacities and
  /// n-1 client boxes with the given (possibly zero) upload. The model
  /// "encompasses various architectures such as a peer-assisted server" (§1).
  [[nodiscard]] static CapacityProfile server_plus_clients(
      std::uint32_t n, double server_upload, double server_storage,
      double client_upload, double client_storage);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(upload_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return upload_.empty(); }
  [[nodiscard]] double upload(BoxId b) const { return upload_.at(b); }
  [[nodiscard]] double storage(BoxId b) const { return storage_.at(b); }
  [[nodiscard]] std::span<const double> uploads() const noexcept { return upload_; }
  [[nodiscard]] std::span<const double> storages() const noexcept { return storage_; }

  [[nodiscard]] double average_upload() const noexcept;
  [[nodiscard]] double average_storage() const noexcept;
  [[nodiscard]] double max_upload() const noexcept;
  [[nodiscard]] double max_storage() const noexcept;
  [[nodiscard]] double min_upload() const noexcept;

  /// Integral per-box upload in stripe connections per round: ⌊u_b c⌋.
  [[nodiscard]] std::uint32_t upload_slots(BoxId b, std::uint32_t c) const;
  /// Integral per-box storage in stripe slots: round(d_b c).
  [[nodiscard]] std::uint32_t storage_slots(BoxId b, std::uint32_t c) const;
  /// Total storage slots Σ_b round(d_b c).
  [[nodiscard]] std::uint64_t total_storage_slots(std::uint32_t c) const;

  [[nodiscard]] bool is_homogeneous(double tol = 1e-12) const noexcept;
  /// u_b/d_b constant across boxes (§1.1 "proportionally heterogeneous").
  [[nodiscard]] bool is_proportional(double tol = 1e-9) const noexcept;

  /// Upload deficit Δ(u*) = Σ_{b: u_b < u*} (u* − u_b)  (§4).
  [[nodiscard]] double upload_deficit(double u_star) const noexcept;
  /// Boxes with u_b < u* ("poor") and u_b ≥ u* ("rich").
  [[nodiscard]] std::vector<BoxId> poor_boxes(double u_star) const;
  [[nodiscard]] std::vector<BoxId> rich_boxes(double u_star) const;

  /// The intuitive scalability requirement of §4: u > 1 + Δ(1)/n.
  [[nodiscard]] bool satisfies_deficit_condition() const noexcept;

  /// Scale every box's storage so that d_b = ratio * u_b (used by the
  /// u*-storage-balance reduction: "artificially reducing the storage").
  [[nodiscard]] CapacityProfile with_storage_ratio(double ratio) const;

  [[nodiscard]] std::string describe() const;

 private:
  std::vector<double> upload_;
  std::vector<double> storage_;
};

}  // namespace p2pvod::model
