// p2pvod_lint — command-line driver for the determinism linter.
//
//   p2pvod_lint --root <repo>        lint the canonical tree (src/, bench/,
//                                    examples/, tools/) under <repo>
//   p2pvod_lint <file|dir>...        lint explicit files or directories
//   p2pvod_lint --rules              list the rules and their rationale
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error. Output is
// gcc-style `file:line: error: [rule] message`, so editors and CI annotate
// it out of the box.
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

int print_usage(std::ostream& out, int status) {
  out << "usage: p2pvod_lint [--root DIR] [--rules] [path...]\n"
         "  --root DIR  lint DIR/{src,bench,examples,tools} (default: .)\n"
         "  --rules     describe the determinism rules and exit\n"
         "With explicit paths, files are linted as given and directories\n"
         "recursively. Suppress a finding with a same-line or previous-line\n"
         "comment: // p2pvod-lint: allow(<rule>) -- plus a rationale.\n";
  return status;
}

int print_rules() {
  for (const auto rule : p2pvod::lint::all_rules()) {
    std::cout << p2pvod::lint::rule_name(rule) << "\n    "
              << p2pvod::lint::rule_summary(rule) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root;
  std::vector<std::filesystem::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return print_usage(std::cout, 0);
    if (arg == "--rules") return print_rules();
    if (arg == "--root") {
      if (i + 1 >= argc) return print_usage(std::cerr, 2);
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::strlen("--root="));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "p2pvod_lint: unknown option " << arg << "\n";
      return print_usage(std::cerr, 2);
    } else {
      paths.emplace_back(arg);
    }
  }

  const auto config = p2pvod::lint::Config::repo_default();
  std::vector<p2pvod::lint::Diagnostic> diagnostics;
  try {
    if (paths.empty()) {
      diagnostics = p2pvod::lint::lint_tree(
          root.empty() ? std::filesystem::path(".") : root, config);
    } else {
      for (const auto& path : paths) {
        std::vector<p2pvod::lint::Diagnostic> batch;
        if (std::filesystem::is_directory(path)) {
          batch = p2pvod::lint::lint_dirs({path}, config);
        } else {
          batch = p2pvod::lint::lint_file(path, config);
        }
        diagnostics.insert(diagnostics.end(), batch.begin(), batch.end());
      }
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }

  for (const auto& diagnostic : diagnostics) {
    std::cout << diagnostic.format() << "\n";
  }
  if (!diagnostics.empty()) {
    std::cerr << "p2pvod_lint: " << diagnostics.size()
              << " determinism violation"
              << (diagnostics.size() == 1 ? "" : "s")
              << " (run with --rules for rationale)\n";
    return 1;
  }
  return 0;
}
