// p2pvod_perfgate — statistical wall-time regression gate.
//
//   p2pvod_perfgate --trajectory baselines/PERF_trajectory.json \
//       [--label STR] [--append] [--out PATH] [--warn-only] \
//       [--rel-tol X] [--mad-factor X] [--abs-slack X] \
//       <BENCH_<id>.json | dir>...
//
// Positional arguments are BENCH result documents from k repeated
// `p2pvod_bench` runs (a directory contributes every BENCH_*.json inside
// it, sorted). The k samples per scenario/stage are reduced to median + MAD
// (obs::WallStats) and compared against the most recent same-scale point of
// the committed trajectory history; the new point can be appended with
// --append (written to --out, default the --trajectory path itself — CI
// uploads the appended file as an artifact, a human commits it).
//
// Exit codes: 0 all comparisons within tolerance (or --warn-only), 1 at
// least one regression beyond tolerance, 2 usage or input error. Output is
// deterministic — byte-identical across repeated invocations on identical
// input (no clock reads; put timestamps in --label if you want them).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trajectory.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using p2pvod::obs::GateFinding;
using p2pvod::obs::GateOptions;
using p2pvod::obs::Trajectory;
using p2pvod::obs::TrajectoryPoint;

void print_usage() {
  std::cout
      << "usage: p2pvod_perfgate --trajectory PATH [options] <bench|dir>...\n"
         "  --trajectory PATH  committed trajectory history (created by\n"
         "                     --append when it does not exist yet)\n"
         "  --label STR        label for the new point (default: unlabeled)\n"
         "  --append           append the new point and write the history\n"
         "  --out PATH         where --append writes (default: --trajectory)\n"
         "  --rel-tol X        relative band, fraction of ref median (0.25)\n"
         "  --mad-factor X     noise band, multiples of ref+cand MAD (4)\n"
         "  --abs-slack X      absolute band floor in seconds (0.05)\n"
         "  --warn-only        report regressions but exit 0\n";
}

std::string seconds(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4fs", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const p2pvod::util::ArgParser args(argc, argv,
                                     {"append", "warn-only", "help"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }
  for (const std::string& name : args.option_names()) {
    static const std::vector<std::string> known = {
        "trajectory", "label",      "append",    "out",
        "rel-tol",    "mad-factor", "abs-slack", "warn-only"};
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::cerr << "p2pvod_perfgate: unknown option --" << name
                << " (see --help)\n";
      return 2;
    }
  }
  const std::string trajectory_path = args.get_string("trajectory", "");
  if (trajectory_path.empty()) {
    std::cerr << "p2pvod_perfgate: --trajectory is required (see --help)\n";
    return 2;
  }
  if (args.positional().empty()) {
    std::cerr << "p2pvod_perfgate: no BENCH inputs (see --help)\n";
    return 2;
  }

  // Expand positionals: a directory contributes its BENCH_*.json, sorted so
  // the reduction sees a canonical sample order regardless of readdir order.
  std::vector<std::string> files;
  for (const std::string& input : args.positional()) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      std::vector<std::string> entries;
      for (const auto& entry : std::filesystem::directory_iterator(input)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json")
          entries.push_back(entry.path().string());
      }
      std::sort(entries.begin(), entries.end());
      if (entries.empty()) {
        std::cerr << "p2pvod_perfgate: no BENCH_*.json in " << input << "\n";
        return 2;
      }
      files.insert(files.end(), entries.begin(), entries.end());
    } else {
      files.push_back(input);
    }
  }

  GateOptions options;
  options.rel_tol = args.get_double("rel-tol", options.rel_tol);
  options.mad_factor = args.get_double("mad-factor", options.mad_factor);
  options.abs_slack = args.get_double("abs-slack", options.abs_slack);

  try {
    std::vector<p2pvod::util::json::Value> documents;
    documents.reserve(files.size());
    for (const std::string& path : files)
      documents.push_back(p2pvod::util::json::parse_file(path));

    const TrajectoryPoint candidate = p2pvod::obs::reduce_bench_runs(
        documents, args.get_string("label", "unlabeled"));

    Trajectory history;
    if (std::filesystem::exists(trajectory_path)) {
      history = Trajectory::from_json(
          p2pvod::util::json::parse_file(trajectory_path));
    }

    const std::vector<GateFinding> findings =
        gate_compare(candidate, history, options);
    if (findings.empty()) {
      std::cout << "[perfgate] no reference point at scale "
                << candidate.scale << " in " << trajectory_path
                << " — nothing to gate (" << candidate.scenarios.size()
                << " scenario(s) measured)\n";
    }
    std::size_t regressions = 0;
    for (const GateFinding& finding : findings) {
      const std::string what =
          finding.stage.empty() ? finding.scenario + " total"
                                : finding.scenario + ":" + finding.stage;
      if (finding.regression) ++regressions;
      std::cout << "[perfgate] " << what << ": median "
                << seconds(finding.candidate_median) << " vs baseline "
                << seconds(finding.reference_median) << " (limit "
                << seconds(finding.limit) << ") — "
                << (finding.regression ? "REGRESSION" : "ok") << "\n";
    }

    if (args.has("append")) {
      history.points.push_back(candidate);
      const std::string out_path = args.get_string("out", trajectory_path);
      const std::filesystem::path out_file(out_path);
      if (out_file.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(out_file.parent_path(), ec);
      }
      p2pvod::util::json::write_file(out_path, history.to_json());
      std::cout << "[perfgate] appended point \"" << candidate.label
                << "\" (" << history.points.size() << " total) to "
                << out_path << "\n";
    }

    if (regressions > 0) {
      std::cout << "[perfgate] " << regressions
                << " regression(s) beyond tolerance\n";
      return args.has("warn-only") ? 0 : 1;
    }
    std::cout << "[perfgate] OK — " << findings.size()
              << " comparison(s) within tolerance\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "p2pvod_perfgate: " << error.what() << "\n";
    return 2;
  }
}
