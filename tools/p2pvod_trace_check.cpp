// p2pvod_trace_check — validate observability artifacts.
//
//   p2pvod_trace_check TRACE_x.json [TRACE_y.json ...]
//   p2pvod_trace_check --bench BENCH_x.json [BENCH_y.json ...]
//
// Default mode checks Chrome trace-event files: the document must be an
// object with a "traceEvents" array whose entries each carry name/ph/ts/
// pid/tid (and dur for complete 'X' events). --bench mode checks BENCH
// result documents for a non-empty top-level "metrics" object whose entries
// each carry kind/stability. Exit 0 when every file passes, 1 otherwise —
// CI's obs smoke step runs this after a traced scenario run so a formatting
// regression fails the build rather than producing files Perfetto rejects.
#include <iostream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using p2pvod::util::json::Value;

int check_trace(const std::string& path, const Value& doc) {
  int errors = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  if (!doc.is_object()) {
    fail("document is not a JSON object");
    return errors;
  }
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail("missing \"traceEvents\" array");
    return errors;
  }
  std::size_t index = 0;
  for (const Value& event : events->as_array()) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!event.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      if (event.find(key) == nullptr) fail(where + " missing \"" + key + "\"");
    }
    const Value* name = event.find("name");
    if (name != nullptr && !name->is_string())
      fail(where + " \"name\" is not a string");
    const Value* phase = event.find("ph");
    if (phase != nullptr) {
      if (!phase->is_string() || phase->as_string().size() != 1) {
        fail(where + " \"ph\" is not a one-character string");
      } else if (phase->as_string() == "X" && event.find("dur") == nullptr) {
        fail(where + " complete event missing \"dur\"");
      }
    }
    for (const char* key : {"ts", "pid", "tid"}) {
      const Value* field = event.find(key);
      if (field != nullptr && !field->is_number())
        fail(where + " \"" + key + "\" is not a number");
    }
  }
  return errors;
}

int check_bench_metrics(const std::string& path, const Value& doc) {
  int errors = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    fail("missing top-level \"metrics\" object (run with --metrics?)");
    return errors;
  }
  if (metrics->as_object().empty()) {
    fail("\"metrics\" object is empty");
    return errors;
  }
  for (const auto& [name, entry] : metrics->as_object()) {
    if (!entry.is_object()) {
      fail("metric \"" + name + "\" is not an object");
      continue;
    }
    for (const char* key : {"kind", "stability"}) {
      if (entry.find(key) == nullptr)
        fail("metric \"" + name + "\" missing \"" + key + "\"");
    }
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  bool bench_mode = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench") {
      bench_mode = true;
    } else if (arg == "--help") {
      std::cout << "usage: p2pvod_trace_check [--bench] <file.json>...\n"
                   "  default: validate Chrome trace-event documents\n"
                   "  --bench: validate the metrics block of BENCH results\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "p2pvod_trace_check: no input files (see --help)\n";
    return 2;
  }

  int errors = 0;
  for (const std::string& path : files) {
    try {
      const Value doc = p2pvod::util::json::parse_file(path);
      errors += bench_mode ? check_bench_metrics(path, doc)
                           : check_trace(path, doc);
    } catch (const std::exception& error) {
      std::cerr << path << ": " << error.what() << "\n";
      ++errors;
    }
  }
  if (errors > 0) {
    std::cerr << "p2pvod_trace_check: " << errors << " error(s)\n";
    return 1;
  }
  std::cout << "p2pvod_trace_check: " << files.size() << " file(s) OK\n";
  return 0;
}
