// p2pvod_trace_check — validate observability artifacts.
//
//   p2pvod_trace_check TRACE_x.json [TRACE_y.json ...]
//   p2pvod_trace_check --bench BENCH_x.json [BENCH_y.json ...]
//   p2pvod_trace_check --profile PROFILE_x.json [...]
//   p2pvod_trace_check --trajectory PERF_trajectory.json [...]
//
// Default mode checks Chrome trace-event files: the document must be an
// object with a "traceEvents" array whose entries each carry name/ph/ts/
// pid/tid (and dur for complete 'X' events). --bench mode checks BENCH
// result documents for a non-empty top-level "metrics" object whose entries
// each carry kind/stability. --profile checks "p2pvod-profile-v1" call-tree
// documents (schema/unit header, per-thread span trees with consistent
// count/total/self fields). --trajectory checks "p2pvod-perf-trajectory-v1"
// histories (points with label/scale and per-scenario WallStats). Exit 0
// when every file passes, 1 otherwise — CI's obs steps run this after each
// artifact-producing run so a formatting regression fails the build rather
// than producing files Perfetto (or the perf gate) rejects.
#include <iostream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using p2pvod::util::json::Value;

int check_trace(const std::string& path, const Value& doc) {
  int errors = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  if (!doc.is_object()) {
    fail("document is not a JSON object");
    return errors;
  }
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail("missing \"traceEvents\" array");
    return errors;
  }
  std::size_t index = 0;
  for (const Value& event : events->as_array()) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!event.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      if (event.find(key) == nullptr) fail(where + " missing \"" + key + "\"");
    }
    const Value* name = event.find("name");
    if (name != nullptr && !name->is_string())
      fail(where + " \"name\" is not a string");
    const Value* phase = event.find("ph");
    if (phase != nullptr) {
      if (!phase->is_string() || phase->as_string().size() != 1) {
        fail(where + " \"ph\" is not a one-character string");
      } else if (phase->as_string() == "X" && event.find("dur") == nullptr) {
        fail(where + " complete event missing \"dur\"");
      }
    }
    for (const char* key : {"ts", "pid", "tid"}) {
      const Value* field = event.find(key);
      if (field != nullptr && !field->is_number())
        fail(where + " \"" + key + "\" is not a number");
    }
  }
  return errors;
}

int check_bench_metrics(const std::string& path, const Value& doc) {
  int errors = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    fail("missing top-level \"metrics\" object (run with --metrics?)");
    return errors;
  }
  if (metrics->as_object().empty()) {
    fail("\"metrics\" object is empty");
    return errors;
  }
  for (const auto& [name, entry] : metrics->as_object()) {
    if (!entry.is_object()) {
      fail("metric \"" + name + "\" is not an object");
      continue;
    }
    for (const char* key : {"kind", "stability"}) {
      if (entry.find(key) == nullptr)
        fail("metric \"" + name + "\" missing \"" + key + "\"");
    }
  }
  return errors;
}

/// Recursive node check for --profile mode; `where` names the path for
/// error messages.
void check_profile_node(const std::string& path, const Value& node,
                        const std::string& where, int& errors) {
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  if (!node.is_object()) {
    fail(where + " is not an object");
    return;
  }
  const Value* name = node.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty())
    fail(where + " missing non-empty \"name\"");
  for (const char* key :
       {"count", "total_ns", "self_ns", "p50_ns", "p95_ns", "p99_ns"}) {
    const Value* field = node.find(key);
    if (field == nullptr || !field->is_number())
      fail(where + " missing number \"" + key + "\"");
  }
  const Value* total = node.find("total_ns");
  const Value* self = node.find("self_ns");
  if (total != nullptr && self != nullptr && total->is_number() &&
      self->is_number() && self->as_number() > total->as_number())
    fail(where + " self_ns exceeds total_ns");
  const Value* children = node.find("children");
  if (children == nullptr || !children->is_array()) {
    fail(where + " missing \"children\" array");
    return;
  }
  std::size_t index = 0;
  for (const Value& child : children->as_array())
    check_profile_node(path, child,
                       where + ".children[" + std::to_string(index++) + "]",
                       errors);
}

int check_profile(const std::string& path, const Value& doc) {
  int errors = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "p2pvod-profile-v1") {
    fail("missing schema \"p2pvod-profile-v1\"");
    return errors;
  }
  const Value* unit = doc.find("unit");
  if (unit == nullptr || !unit->is_string() || unit->as_string() != "ns")
    fail("missing \"unit\": \"ns\"");
  const Value* span_count = doc.find("span_count");
  if (span_count == nullptr || !span_count->is_number())
    fail("missing number \"span_count\"");
  const Value* threads = doc.find("threads");
  if (threads == nullptr || !threads->is_array()) {
    fail("missing \"threads\" array");
    return errors;
  }
  std::size_t index = 0;
  for (const Value& thread : threads->as_array()) {
    const std::string where = "threads[" + std::to_string(index++) + "]";
    if (!thread.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    const Value* tid = thread.find("tid");
    if (tid == nullptr || !tid->is_number())
      fail(where + " missing number \"tid\"");
    const Value* spans = thread.find("spans");
    if (spans == nullptr || !spans->is_array()) {
      fail(where + " missing \"spans\" array");
      continue;
    }
    std::size_t span_index = 0;
    for (const Value& span : spans->as_array())
      check_profile_node(
          path, span, where + ".spans[" + std::to_string(span_index++) + "]",
          errors);
  }
  return errors;
}

int check_trajectory(const std::string& path, const Value& doc) {
  int errors = 0;
  const auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "p2pvod-perf-trajectory-v1") {
    fail("missing schema \"p2pvod-perf-trajectory-v1\"");
    return errors;
  }
  const Value* points = doc.find("points");
  if (points == nullptr || !points->is_array()) {
    fail("missing \"points\" array");
    return errors;
  }
  const auto check_stats = [&](const Value& stats, const std::string& where) {
    if (!stats.is_object()) {
      fail(where + " is not an object");
      return;
    }
    for (const char* key :
         {"runs", "median", "mad", "mean", "stddev", "min", "max"}) {
      const Value* field = stats.find(key);
      if (field == nullptr || !field->is_number())
        fail(where + " missing number \"" + key + "\"");
    }
  };
  std::size_t index = 0;
  for (const Value& point : points->as_array()) {
    const std::string where = "points[" + std::to_string(index++) + "]";
    if (!point.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    const Value* label = point.find("label");
    if (label == nullptr || !label->is_string())
      fail(where + " missing string \"label\"");
    const Value* scale = point.find("scale");
    if (scale == nullptr || !scale->is_number())
      fail(where + " missing number \"scale\"");
    const Value* scenarios = point.find("scenarios");
    if (scenarios == nullptr || !scenarios->is_object()) {
      fail(where + " missing \"scenarios\" object");
      continue;
    }
    for (const auto& [id, scenario] : scenarios->as_object()) {
      const std::string sw = where + ".scenarios." + id;
      if (!scenario.is_object()) {
        fail(sw + " is not an object");
        continue;
      }
      const Value* total = scenario.find("total");
      if (total == nullptr) {
        fail(sw + " missing \"total\"");
      } else {
        check_stats(*total, sw + ".total");
      }
      const Value* stages = scenario.find("stages");
      if (stages == nullptr || !stages->is_object()) {
        fail(sw + " missing \"stages\" object");
        continue;
      }
      for (const auto& [stage, stats] : stages->as_object())
        check_stats(stats, sw + ".stages." + stage);
    }
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kTrace, kBench, kProfile, kTrajectory };
  Mode mode = Mode::kTrace;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench") {
      mode = Mode::kBench;
    } else if (arg == "--profile") {
      mode = Mode::kProfile;
    } else if (arg == "--trajectory") {
      mode = Mode::kTrajectory;
    } else if (arg == "--help") {
      std::cout
          << "usage: p2pvod_trace_check [--bench|--profile|--trajectory] "
             "<file.json>...\n"
             "  default:      validate Chrome trace-event documents\n"
             "  --bench:      validate the metrics block of BENCH results\n"
             "  --profile:    validate p2pvod-profile-v1 call-tree documents\n"
             "  --trajectory: validate p2pvod-perf-trajectory-v1 histories\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "p2pvod_trace_check: no input files (see --help)\n";
    return 2;
  }

  int errors = 0;
  for (const std::string& path : files) {
    try {
      const Value doc = p2pvod::util::json::parse_file(path);
      switch (mode) {
        case Mode::kBench:
          errors += check_bench_metrics(path, doc);
          break;
        case Mode::kProfile:
          errors += check_profile(path, doc);
          break;
        case Mode::kTrajectory:
          errors += check_trajectory(path, doc);
          break;
        case Mode::kTrace:
          errors += check_trace(path, doc);
          break;
      }
    } catch (const std::exception& error) {
      std::cerr << path << ": " << error.what() << "\n";
      ++errors;
    }
  }
  if (errors > 0) {
    std::cerr << "p2pvod_trace_check: " << errors << " error(s)\n";
    return 1;
  }
  std::cout << "p2pvod_trace_check: " << files.size() << " file(s) OK\n";
  return 0;
}
